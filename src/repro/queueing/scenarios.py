"""Workload scenarios: named traffic regimes for the cluster simulator.

The paper's queueing study runs one operating point — Poisson arrivals,
exponential sizes, uniform types.  Scheduler conclusions are known to
flip under bursty, diurnal, batchy, and heavy-tailed traffic, so this
module packages those regimes as named, seeded, serializable
:class:`Scenario` objects that every experiment can sweep over:

* an **arrival shape** (Poisson, cyclic MMPP bursts, sinusoidal
  diurnal swing, Poisson batch storms, saturated backlog, or a replay
  of another scenario through the trace subsystem);
* a **size law** (:mod:`repro.queueing.sizes`): exponential, fixed,
  bounded-Pareto heavy tail, or a bimodal mice/elephants mixture;
* a **type mix** (uniform or skewed weights over the workload's types).

Scenarios are *rate-free*: they describe traffic **shape**, and the
caller supplies the absolute mean job rate at build time (experiments
derive it from offered load × cluster capacity ÷ mean job size).  MMPP
state rates are stored as multipliers and normalized so the long-run
mean equals the requested rate exactly, whatever the burst ratio.

The module-level registry (:func:`register_scenario`,
:func:`get_scenario`, :func:`scenario_names`) ships the named scenarios
in :data:`SCENARIOS`; ``python -m repro.experiments scenario_sweep``
runs every one of them against all three dispatchers, and the
golden-trace harness (``tests/golden/``) pins a small trace and its
:class:`~repro.queueing.cluster.ClusterMetrics` per (scenario,
dispatcher) pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import WorkloadError
from repro.queueing.arrivals import (
    batch_arrivals,
    diurnal_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
    saturated_arrivals,
)
from repro.queueing.job import Job
from repro.queueing.sizes import SizeModel, make_size_model
from repro.queueing.trace import trace_arrivals, trace_from_jobs

__all__ = [
    "Scenario",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
]

_ARRIVAL_KINDS = (
    "poisson",
    "mmpp",
    "diurnal",
    "batch",
    "saturated",
    "replay",
)


@dataclass(frozen=True)
class Scenario:
    """One named traffic regime: arrival shape × size law × type mix.

    Attributes:
        name: registry key.
        description: one-line summary for tables and docs.
        stress: what the scenario is designed to stress-test.
        arrival: arrival-shape kind (one of poisson / mmpp / diurnal /
            batch / saturated / replay).
        arrival_params: shape parameters (rate-free; see
            :meth:`build_jobs`).  For ``replay`` this holds the name of
            the scenario being replayed under ``"base"``.
        size_spec: :meth:`~repro.queueing.sizes.SizeModel.spec` payload
            (None = unit-mean exponential).
        type_weights: optional *rank* → weight map applied
            positionally to whatever types the caller passes (types
            beyond the rank list weigh 0 — see :meth:`weights_for`);
            None = uniform.
        n_jobs: default stream length (experiments may scale it).
        load: default offered load as a fraction of cluster capacity
            (ignored for saturated scenarios).
        backlog_per_machine: admission cap used by saturated runs.
    """

    name: str
    description: str
    stress: str
    arrival: str
    arrival_params: Mapping[str, object] = field(default_factory=dict)
    size_spec: Mapping[str, object] | None = None
    type_weights: Mapping[str, float] | None = None
    n_jobs: int = 2_000
    load: float = 0.7
    backlog_per_machine: int = 12

    def __post_init__(self) -> None:
        if self.arrival not in _ARRIVAL_KINDS:
            raise WorkloadError(
                f"unknown arrival kind {self.arrival!r}; "
                f"choose one of {_ARRIVAL_KINDS}"
            )
        if self.n_jobs <= 0:
            raise WorkloadError(f"n_jobs must be positive, got {self.n_jobs}")
        if not 0.0 < self.load <= 1.0:
            raise WorkloadError(
                f"load must be in (0, 1], got {self.load}"
            )

    @property
    def saturated(self) -> bool:
        """True when every job is available at time zero."""
        return self.arrival == "saturated"

    def size_model(self) -> SizeModel:
        """The scenario's size law as a sampler object."""
        return make_size_model(self.size_spec)

    @property
    def mean_size(self) -> float:
        """Mean job size of the scenario's size law."""
        return self.size_model().mean

    def weights_for(
        self, types: Sequence[str]
    ) -> Mapping[str, float] | None:
        """Type weights projected onto the caller's type roster.

        A skewed scenario names *ranks* rather than concrete types:
        its weights apply positionally to however many types the
        caller brings, so one scenario serves the synthetic roster and
        the golden harness's tiny alphabets alike.  Types beyond the
        rank list weigh 0 (they never arrive) — the skew shape is
        preserved, never recycled, on larger rosters.
        """
        if self.type_weights is None:
            return None
        # Length-first ordering keeps rank10 after rank9 (plain
        # lexicographic sorting would scramble double-digit ranks).
        ordered = sorted(
            self.type_weights.items(), key=lambda kv: (len(kv[0]), kv[0])
        )
        return {
            job_type: ordered[i][1] if i < len(ordered) else 0.0
            for i, job_type in enumerate(types)
        }

    def build_jobs(
        self,
        types: Sequence[str],
        *,
        mean_rate: float,
        seed: int | random.Random = 0,
        n_jobs: int | None = None,
    ) -> Iterator[Job]:
        """Generate the scenario's job stream.

        Args:
            types: job types of the target workload.
            mean_rate: long-run mean arrival rate in jobs per unit
                time (ignored by saturated scenarios).
            seed: base RNG seed; every internal purpose derives its
                own stream from it.
            n_jobs: stream length override (default ``self.n_jobs``).
        """
        count = self.n_jobs if n_jobs is None else n_jobs
        params = dict(self.arrival_params)
        weights = self.weights_for(types)
        common = {
            "size_model": self.size_spec or {"kind": "exponential"},
            "type_weights": weights,
            "seed": seed,
            "n_jobs": count,
        }
        if self.arrival == "saturated":
            return saturated_arrivals(types, **common)
        if self.arrival == "poisson":
            return poisson_arrivals(types, rate=mean_rate, **common)
        if self.arrival == "mmpp":
            multipliers = params["rate_multipliers"]
            dwells = params["mean_dwells"]
            weighted = sum(m * d for m, d in zip(multipliers, dwells))
            scale = sum(dwells) / weighted
            return mmpp_arrivals(
                types,
                state_rates=[m * mean_rate * scale for m in multipliers],
                mean_dwells=list(dwells),
                **common,
            )
        if self.arrival == "diurnal":
            return diurnal_arrivals(
                types,
                base_rate=mean_rate,
                amplitude=float(params["amplitude"]),
                period=float(params["period"]),
                **common,
            )
        if self.arrival == "batch":
            mean_batch = float(params["mean_batch_size"])
            return batch_arrivals(
                types,
                batch_rate=mean_rate / mean_batch,
                mean_batch_size=mean_batch,
                **common,
            )
        # replay: generate the base scenario's stream, round-trip it
        # through the trace payload, and replay — every sweep exercises
        # the record → serialize → replay path and must land on the
        # exact jobs of the base scenario (pinned by a unit test).
        base = get_scenario(str(params["base"]))
        jobs = list(
            base.build_jobs(
                types, mean_rate=mean_rate, seed=seed, n_jobs=count
            )
        )
        return trace_arrivals(trace_from_jobs(jobs))

    def to_jsonable(self) -> dict[str, object]:
        """JSON-able description (for results files and docs tables)."""
        return {
            "name": self.name,
            "description": self.description,
            "stress": self.stress,
            "arrival": self.arrival,
            "arrival_params": dict(self.arrival_params),
            "size_spec": dict(self.size_spec) if self.size_spec else None,
            "type_weights": (
                dict(self.type_weights) if self.type_weights else None
            ),
            "n_jobs": self.n_jobs,
            "load": self.load,
            "backlog_per_machine": self.backlog_per_machine,
        }


SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (same-name re-registration
    replaces, keeping module reloads idempotent)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; registered: {sorted(SCENARIOS)}"
        ) from None


def scenario_names() -> list[str]:
    """Registered scenario names in registration order."""
    return list(SCENARIOS)


def all_scenarios() -> list[Scenario]:
    """All registered scenarios in registration order."""
    return list(SCENARIOS.values())


# ----------------------------------------------------------------------
# The shipped scenarios.  Each stresses one departure from the paper's
# operating point; `baseline_poisson` *is* that operating point, so
# every other row of a sweep reads as a delta against the paper.
# ----------------------------------------------------------------------

register_scenario(Scenario(
    name="baseline_poisson",
    description="Poisson arrivals, exponential sizes, uniform types",
    stress="the paper's operating point — the control row",
    arrival="poisson",
))

register_scenario(Scenario(
    name="heavy_tail",
    description="Poisson arrivals, bounded-Pareto sizes (alpha 1.5)",
    stress="heavy-tailed work: a few elephants dominate the backlog",
    arrival="poisson",
    size_spec={
        "kind": "bounded_pareto", "alpha": 1.5,
        "lower": 0.1, "upper": 50.0,
    },
))

register_scenario(Scenario(
    name="mice_elephants",
    description="Poisson arrivals, bimodal sizes (5% elephants, 20x)",
    stress="bimodal size mix: size-aware policies vs size-blind ones",
    arrival="poisson",
    size_spec={
        "kind": "bimodal", "small_mean": 0.5,
        "large_mean": 10.0, "large_fraction": 0.05,
    },
))

register_scenario(Scenario(
    name="bursty_mmpp",
    description="2-state MMPP (8x burst vs lull), exponential sizes",
    stress="correlated bursts: queue buildup and drain transients",
    arrival="mmpp",
    arrival_params={
        "rate_multipliers": (8.0, 1.0),
        "mean_dwells": (5.0, 40.0),
    },
))

register_scenario(Scenario(
    name="diurnal_cycle",
    description="sinusoidal rate (amplitude 0.8), exponential sizes",
    stress="slow nonstationarity: day/night swing around the mean",
    arrival="diurnal",
    arrival_params={"amplitude": 0.8, "period": 200.0},
))

register_scenario(Scenario(
    name="batch_storms",
    description="Poisson batch epochs, geometric batches (mean 6)",
    stress="simultaneous arrivals: dispatch against one queue snapshot",
    arrival="batch",
    arrival_params={"mean_batch_size": 6.0},
))

register_scenario(Scenario(
    name="skewed_types",
    description="Poisson arrivals, one dominant type (weight 8:1:1:...)",
    stress="type imbalance: symbiosis has few partners to pair with",
    arrival="poisson",
    type_weights={"rank0": 8.0, "rank1": 1.0, "rank2": 1.0, "rank3": 1.0},
))

register_scenario(Scenario(
    name="saturated_backlog",
    description="all jobs at time zero, fixed unit sizes",
    stress="maximum-throughput regime: pure packing, no idling",
    arrival="saturated",
    size_spec={"kind": "fixed", "size": 1.0},
    n_jobs=1_200,
))

register_scenario(Scenario(
    name="replayed_burst",
    description="bursty_mmpp recorded to a trace and replayed",
    stress="trace-driven replay: the record/serialize/replay path",
    arrival="replay",
    arrival_params={"base": "bursty_mmpp"},
))
