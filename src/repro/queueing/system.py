"""System-level metrics accounting for the queueing experiments.

The paper argues (Section VI) that turnaround time alone is misleading
and that **processor utilization** and the **empty fraction** are the
honest indicators of a throughput improvement in a non-saturated
system.  :class:`SystemMetrics` accumulates all three, plus the achieved
throughput and per-coschedule time, over a simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.microarch.rates import canonical_coschedule

__all__ = ["SystemMetrics"]


@dataclass
class SystemMetrics:
    """Accumulated observations of one simulation run.

    All time integrals start after the configured warm-up.  Attributes:

    Attributes:
        measured_time: total observed (post-warm-up) time.
        busy_context_time: integral of the number of running jobs over
            time; divided by ``measured_time`` this is the paper's
            *processor utilization* (average busy contexts, up to K).
        empty_time: time with **no jobs in the system** (the paper's
            *processor empty fraction* denominator is total time).
        work_done: weighted work executed.
        completed: number of jobs that finished inside the window.
        turnaround_sum: sum of turnaround times of those jobs.
        time_by_coschedule: time spent per running type-multiset.
    """

    measured_time: float = 0.0
    busy_context_time: float = 0.0
    empty_time: float = 0.0
    work_done: float = 0.0
    completed: int = 0
    turnaround_sum: float = 0.0
    time_by_coschedule: dict[tuple[str, ...], float] = field(
        default_factory=dict
    )

    def observe_interval(
        self,
        dt: float,
        running_types: tuple[str, ...],
        jobs_in_system: int,
        work: float,
    ) -> None:
        """Account one inter-event interval."""
        if dt < 0.0:
            raise SimulationError(f"negative interval {dt}")
        if dt == 0.0:
            return
        self.measured_time += dt
        self.busy_context_time += len(running_types) * dt
        if jobs_in_system == 0:
            self.empty_time += dt
        self.work_done += work
        if running_types:
            # The engine hands in canonical tuples, which
            # canonical_coschedule returns as-is (no re-sort, and the
            # dict key stays the same interned object).
            key = canonical_coschedule(running_types)
            self.time_by_coschedule[key] = (
                self.time_by_coschedule.get(key, 0.0) + dt
            )

    def observe_completion(self, turnaround: float) -> None:
        """Account one job completion."""
        if turnaround < 0.0:
            raise SimulationError(f"negative turnaround {turnaround}")
        self.completed += 1
        self.turnaround_sum += turnaround

    @property
    def mean_turnaround(self) -> float:
        """Average turnaround of jobs completed in the window."""
        if self.completed == 0:
            raise SimulationError("no completions observed")
        return self.turnaround_sum / self.completed

    @property
    def utilization(self) -> float:
        """Average number of busy contexts (the paper's utilization)."""
        if self.measured_time == 0.0:
            raise SimulationError("no time observed")
        return self.busy_context_time / self.measured_time

    @property
    def empty_fraction(self) -> float:
        """Fraction of time the system held no jobs at all."""
        if self.measured_time == 0.0:
            raise SimulationError("no time observed")
        return self.empty_time / self.measured_time

    @property
    def throughput(self) -> float:
        """Weighted work executed per unit time."""
        if self.measured_time == 0.0:
            raise SimulationError("no time observed")
        return self.work_done / self.measured_time

    def coschedule_fractions(self) -> dict[tuple[str, ...], float]:
        """Time fraction per coschedule over the measured window."""
        if self.measured_time == 0.0:
            raise SimulationError("no time observed")
        return {
            s: t / self.measured_time
            for s, t in self.time_by_coschedule.items()
        }
