"""System-level metrics accounting for the queueing experiments.

The paper argues (Section VI) that turnaround time alone is misleading
and that **processor utilization** and the **empty fraction** are the
honest indicators of a throughput improvement in a non-saturated
system.  :class:`SystemMetrics` accumulates all three, plus the achieved
throughput and per-coschedule time, over a simulation run.

**Streaming, mergeable, exact.**  A metrics object is a constant-memory
accumulator (its size is bounded by the number of *distinct
coschedules*, never by the number of jobs or events), and two metrics
objects covering disjoint measurement windows — or disjoint machine
partitions — reduce with :meth:`SystemMetrics.merge` to **bit-identical**
results whatever the grouping.  Plain float ``+=`` accumulation cannot
offer that (float addition is not associative), so every float
observation is accumulated *exactly*: a finite double is an integer
multiple of ``2**-1074``, so each contribution is converted to that
fixed-point integer (``as_integer_ratio`` is exact, the denominator is
a power of two) and summed with arbitrary-precision integer addition —
associative and commutative by construction.  Rendering back to a
float divides the integer sum by ``2**1074`` with CPython's
correctly-rounded ``int.__truediv__``, so the rendered value is the
correctly rounded exact sum of the contributions: the same float for
any split of the run into windows, including the no-split monolithic
run.

**Bounded coschedule split.**  ``time_by_coschedule`` holds at most
``coschedule_cap`` distinct keys; once the cap is reached, time for
*new* coschedules accumulates into a single overflow bucket
(``overflow_time``, with ``overflow_intervals`` counting the folded
observations).  The cap is a memory guard, not an expected regime: the
number of distinct coschedules is bounded by the type roster and the
context count (multisets of at most K types), so ordinary runs never
overflow.  :meth:`merge` takes the union of the two splits without
re-capping — dropping keys on merge would break associativity — so
window merges reproduce the monolithic split exactly whenever the
monolithic run itself stays under the cap.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.microarch.rates import canonical_coschedule

__all__ = ["SystemMetrics"]

#: Every finite double is an integer multiple of 2**-1074 (the
#: subnormal ulp), so this scale makes float -> fixed-point exact.
_SCALE_BITS = 1074
_SCALE = 1 << _SCALE_BITS


def _fixed(value: float) -> int:
    """Exact fixed-point integer of a float at scale ``2**-1074``."""
    n, d = value.as_integer_ratio()
    # d is a power of two for every finite float, so the shift is exact.
    return n << (_SCALE_BITS + 1 - d.bit_length())


def _unfixed(accumulated: int) -> float:
    """Correctly rounded float of a fixed-point integer sum.

    CPython's ``int / int`` is correctly rounded, so equal exact sums
    render to equal floats regardless of how they were grouped.
    """
    if accumulated == 0:
        return 0.0
    return accumulated / _SCALE


class SystemMetrics:
    """Accumulated observations of one simulation run (or window).

    All time integrals start after the configured warm-up.  The public
    surface mirrors the historical dataclass: ``measured_time``,
    ``busy_context_time``, ``empty_time``, ``work_done``,
    ``turnaround_sum`` and ``time_by_coschedule`` render the exact
    internal accumulators as floats; ``completed`` stays an int.

    Attributes:
        completed: number of jobs that finished inside the window.
        coschedule_cap: maximum distinct ``time_by_coschedule`` keys
            before new coschedules fold into the overflow bucket.
        overflow_intervals: observations folded into the bucket.
    """

    #: Default bound on distinct coschedule keys per metrics object.
    COSCHEDULE_CAP = 4096

    __slots__ = (
        "_measured",
        "_busy",
        "_empty",
        "_work",
        "_turnaround",
        "_coschedule",
        "_overflow",
        "completed",
        "overflow_intervals",
        "coschedule_cap",
    )

    def __init__(self, *, coschedule_cap: int | None = None) -> None:
        self._measured = 0
        self._busy = 0
        self._empty = 0
        self._work = 0
        self._turnaround = 0
        #: exact fixed-point time per running type-multiset.
        self._coschedule: dict[tuple[str, ...], int] = {}
        self._overflow = 0
        self.completed = 0
        self.overflow_intervals = 0
        self.coschedule_cap = (
            self.COSCHEDULE_CAP if coschedule_cap is None else coschedule_cap
        )

    # ------------------------------------------------------------------
    # Accumulation (the engine hot path).
    # ------------------------------------------------------------------
    def observe_interval(
        self,
        dt: float,
        running_types: tuple[str, ...],
        jobs_in_system: int,
        work: float,
    ) -> None:
        """Account one inter-event interval."""
        if dt < 0.0:
            raise SimulationError(f"negative interval {dt}")
        if dt == 0.0:
            return
        n, d = dt.as_integer_ratio()
        fixed_dt = n << (_SCALE_BITS + 1 - d.bit_length())
        self._measured += fixed_dt
        self._busy += len(running_types) * fixed_dt
        if jobs_in_system == 0:
            self._empty += fixed_dt
        if work != 0.0:
            n, d = work.as_integer_ratio()
            self._work += n << (_SCALE_BITS + 1 - d.bit_length())
        if running_types:
            # The engine hands in canonical tuples, which
            # canonical_coschedule returns as-is (no re-sort, and the
            # dict key stays the same interned object).
            key = canonical_coschedule(running_types)
            split = self._coschedule
            present = split.get(key)
            if present is not None:
                split[key] = present + fixed_dt
            elif len(split) < self.coschedule_cap:
                split[key] = fixed_dt
            else:
                self._overflow += fixed_dt
                self.overflow_intervals += 1

    def observe_completion(self, turnaround: float) -> None:
        """Account one job completion."""
        if turnaround < 0.0:
            raise SimulationError(f"negative turnaround {turnaround}")
        self.completed += 1
        if turnaround != 0.0:
            n, d = turnaround.as_integer_ratio()
            self._turnaround += n << (_SCALE_BITS + 1 - d.bit_length())

    # ------------------------------------------------------------------
    # Merge algebra: associative, commutative, with SystemMetrics() as
    # the identity element (all pinned by property tests).
    # ------------------------------------------------------------------
    def merge(self, other: "SystemMetrics") -> "SystemMetrics":
        """Exact reduction of two disjoint windows (or partitions).

        Integer sums are associative, so any grouping of windows —
        including the monolithic no-split run — produces bit-identical
        rendered metrics.  The coschedule splits are unioned without
        re-capping (a merge never drops keys); the overflow buckets
        add.  The result uses the larger of the two caps for its own
        future observations.
        """
        merged = SystemMetrics(
            coschedule_cap=max(self.coschedule_cap, other.coschedule_cap)
        )
        merged._measured = self._measured + other._measured
        merged._busy = self._busy + other._busy
        merged._empty = self._empty + other._empty
        merged._work = self._work + other._work
        merged._turnaround = self._turnaround + other._turnaround
        merged.completed = self.completed + other.completed
        split = dict(self._coschedule)
        for key, fixed_dt in other._coschedule.items():
            present = split.get(key)
            split[key] = fixed_dt if present is None else present + fixed_dt
        merged._coschedule = split
        merged._overflow = self._overflow + other._overflow
        merged.overflow_intervals = (
            self.overflow_intervals + other.overflow_intervals
        )
        return merged

    # ------------------------------------------------------------------
    # Rendered views (the historical float surface).
    # ------------------------------------------------------------------
    @property
    def measured_time(self) -> float:
        """Total observed (post-warm-up) time."""
        return _unfixed(self._measured)

    @property
    def busy_context_time(self) -> float:
        """Integral of the number of running jobs over time."""
        return _unfixed(self._busy)

    @property
    def empty_time(self) -> float:
        """Time with no jobs in the system at all."""
        return _unfixed(self._empty)

    @property
    def work_done(self) -> float:
        """Weighted work executed."""
        return _unfixed(self._work)

    @property
    def turnaround_sum(self) -> float:
        """Sum of turnaround times of completed jobs."""
        return _unfixed(self._turnaround)

    @property
    def time_by_coschedule(self) -> dict[tuple[str, ...], float]:
        """Time spent per running type-multiset (rendered floats)."""
        return {key: _unfixed(t) for key, t in self._coschedule.items()}

    @property
    def overflow_time(self) -> float:
        """Time folded into the bounded-split overflow bucket."""
        return _unfixed(self._overflow)

    @property
    def mean_turnaround(self) -> float:
        """Average turnaround of jobs completed in the window."""
        if self.completed == 0:
            raise SimulationError("no completions observed")
        return self.turnaround_sum / self.completed

    @property
    def utilization(self) -> float:
        """Average number of busy contexts (the paper's utilization)."""
        measured = self.measured_time
        if measured == 0.0:
            raise SimulationError("no time observed")
        return self.busy_context_time / measured

    @property
    def empty_fraction(self) -> float:
        """Fraction of time the system held no jobs at all."""
        measured = self.measured_time
        if measured == 0.0:
            raise SimulationError("no time observed")
        return self.empty_time / measured

    @property
    def throughput(self) -> float:
        """Weighted work executed per unit time."""
        measured = self.measured_time
        if measured == 0.0:
            raise SimulationError("no time observed")
        return self.work_done / measured

    def coschedule_fractions(self) -> dict[tuple[str, ...], float]:
        """Time fraction per coschedule over the measured window."""
        measured = self.measured_time
        if measured == 0.0:
            raise SimulationError("no time observed")
        return {
            s: _unfixed(t) / measured for s, t in self._coschedule.items()
        }

    # ------------------------------------------------------------------
    # Serialization: results payloads and checkpoint round-trips.
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict[str, object]:
        """The historical results payload: rendered floats per field.

        Shape-compatible with the pre-streaming dataclass (the golden
        and differential harnesses compare this payload); the overflow
        bucket appears only when it holds anything, so ordinary runs
        keep the exact historical key set.
        """
        payload: dict[str, object] = {
            "measured_time": self.measured_time,
            "busy_context_time": self.busy_context_time,
            "empty_time": self.empty_time,
            "work_done": self.work_done,
            "completed": self.completed,
            "turnaround_sum": self.turnaround_sum,
            "time_by_coschedule": self.time_by_coschedule,
        }
        if self._overflow or self.overflow_intervals:
            payload["overflow_time"] = self.overflow_time
            payload["overflow_intervals"] = self.overflow_intervals
        return payload

    def to_state(self) -> dict[str, object]:
        """Exact internal state (arbitrary-precision ints, JSON-safe)."""
        return {
            "measured": self._measured,
            "busy": self._busy,
            "empty": self._empty,
            "work": self._work,
            "turnaround": self._turnaround,
            "completed": self.completed,
            "coschedule": [
                [list(key), t] for key, t in self._coschedule.items()
            ],
            "overflow": self._overflow,
            "overflow_intervals": self.overflow_intervals,
            "coschedule_cap": self.coschedule_cap,
        }

    @classmethod
    def from_state(cls, state: dict[str, object]) -> "SystemMetrics":
        """Rebuild a metrics object from :meth:`to_state` (bit-exact)."""
        metrics = cls(coschedule_cap=int(state["coschedule_cap"]))
        metrics._measured = int(state["measured"])
        metrics._busy = int(state["busy"])
        metrics._empty = int(state["empty"])
        metrics._work = int(state["work"])
        metrics._turnaround = int(state["turnaround"])
        metrics.completed = int(state["completed"])
        metrics._coschedule = {
            canonical_coschedule(tuple(key)): int(t)
            for key, t in state["coschedule"]
        }
        metrics._overflow = int(state["overflow"])
        metrics.overflow_intervals = int(state["overflow_intervals"])
        return metrics

    # ------------------------------------------------------------------
    # Value semantics (the historical dataclass compared field-wise).
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystemMetrics):
            return NotImplemented
        return (
            self._measured == other._measured
            and self._busy == other._busy
            and self._empty == other._empty
            and self._work == other._work
            and self._turnaround == other._turnaround
            and self.completed == other.completed
            and self._coschedule == other._coschedule
            and self._overflow == other._overflow
            and self.overflow_intervals == other.overflow_intervals
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            "SystemMetrics("
            f"measured_time={self.measured_time!r}, "
            f"busy_context_time={self.busy_context_time!r}, "
            f"empty_time={self.empty_time!r}, "
            f"work_done={self.work_done!r}, "
            f"completed={self.completed!r}, "
            f"turnaround_sum={self.turnaround_sum!r}, "
            f"coschedules={len(self._coschedule)})"
        )
