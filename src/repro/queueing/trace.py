"""Workload traces: serialize any job stream to JSON and replay it.

A *trace* is the pristine arrival-side view of a workload — for every
job its id, type, size, and arrival time, before the simulator mutates
``remaining`` / ``completion_time``.  Traces close the loop between
the synthetic arrival processes and deterministic replay:

* :class:`TraceRecorder` tees any job iterator, capturing each job as
  it flows into a simulation (record a live run);
* :func:`trace_from_jobs` / :func:`jobs_from_trace` convert between
  job lists and the JSON-able payload;
* :func:`save_trace` / :func:`load_trace` persist the payload;
* :func:`trace_arrivals` is the arrival process that replays a trace.

Round-trips are **bit-identical**: JSON serializes floats via their
shortest round-trip repr, so record → save → load → replay reproduces
the exact timestamps and sizes, and the golden-trace regression
harness (``tests/golden/``) relies on that to pin engine behavior.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SimulationError
from repro.queueing.job import Job

__all__ = [
    "TRACE_FORMAT",
    "TraceRecorder",
    "trace_from_jobs",
    "jobs_from_trace",
    "save_trace",
    "load_trace",
    "trace_arrivals",
]

TRACE_FORMAT = "repro-trace-v1"

_JOB_FIELDS = ("job_id", "job_type", "size", "arrival_time")


def _job_record(job: Job) -> dict[str, object]:
    return {
        "job_id": job.job_id,
        "job_type": job.job_type,
        "size": job.size,
        "arrival_time": job.arrival_time,
    }


def trace_from_jobs(
    jobs: Iterable[Job], *, metadata: Mapping[str, object] | None = None
) -> dict[str, object]:
    """Snapshot a job stream as a JSON-able trace payload.

    Only the arrival-side fields are captured, so recording a stream
    that already ran through a simulator still yields the pristine
    workload (simulation mutates ``remaining``, never the snapshot
    fields).
    """
    return {
        "format": TRACE_FORMAT,
        "metadata": dict(metadata or {}),
        "jobs": [_job_record(job) for job in jobs],
    }


def jobs_from_trace(trace: Mapping[str, object]) -> list[Job]:
    """Materialize the jobs of a trace payload, validating as we go."""
    if trace.get("format") != TRACE_FORMAT:
        raise SimulationError(
            f"not a {TRACE_FORMAT} payload (format={trace.get('format')!r})"
        )
    records = trace.get("jobs")
    if not isinstance(records, Sequence):
        raise SimulationError("trace payload has no 'jobs' list")
    jobs: list[Job] = []
    previous = -1.0
    for i, record in enumerate(records):
        missing = [f for f in _JOB_FIELDS if f not in record]
        if missing:
            raise SimulationError(
                f"trace job #{i} is missing fields {missing}"
            )
        job = Job(
            job_id=int(record["job_id"]),
            job_type=str(record["job_type"]),
            size=float(record["size"]),
            arrival_time=float(record["arrival_time"]),
        )
        if job.arrival_time < previous:
            raise SimulationError(
                f"trace job #{i} arrives at {job.arrival_time} before "
                f"its predecessor at {previous}"
            )
        previous = job.arrival_time
        jobs.append(job)
    return jobs


def save_trace(
    path: str | Path,
    jobs: Iterable[Job],
    *,
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write a trace JSON file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = trace_from_jobs(jobs, metadata=metadata)
    with path.open("w") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return path


def load_trace(path: str | Path) -> list[Job]:
    """Load a trace JSON file back into a replayable job list."""
    with Path(path).open() as fp:
        return jobs_from_trace(json.load(fp))


def trace_arrivals(
    trace: Mapping[str, object] | Sequence[Job] | str | Path,
) -> Iterator[Job]:
    """Arrival process that replays a trace deterministically.

    Accepts a payload dict, an already-materialized job list, or a
    path to a saved trace file.  Fresh :class:`Job` objects are
    yielded each call, so one trace can drive many simulations.
    """
    if isinstance(trace, (str, Path)):
        jobs = load_trace(trace)
    elif isinstance(trace, Mapping):
        jobs = jobs_from_trace(trace)
    else:
        jobs = [
            Job(
                job_id=job.job_id,
                job_type=job.job_type,
                size=job.size,
                arrival_time=job.arrival_time,
            )
            for job in trace
        ]
    yield from jobs


class TraceRecorder:
    """Tee a job stream: pass jobs through while snapshotting them.

    Usage::

        recorder = TraceRecorder()
        metrics = run_cluster(rates, schedulers, dispatcher,
                              recorder.capture(stream))
        recorder.save("run.trace.json")

    The snapshot happens *before* the job reaches the simulator, so the
    recorded trace is the pristine workload even though the simulator
    mutates the very same ``Job`` objects.
    """

    def __init__(self) -> None:
        self.records: list[dict[str, object]] = []

    def capture(self, stream: Iterable[Job]) -> Iterator[Job]:
        """Yield every job of ``stream``, recording it on the way."""
        for job in stream:
            self.records.append(_job_record(job))
            yield job

    def trace(
        self, *, metadata: Mapping[str, object] | None = None
    ) -> dict[str, object]:
        """The captured trace payload (so far)."""
        return {
            "format": TRACE_FORMAT,
            "metadata": dict(metadata or {}),
            "jobs": list(self.records),
        }

    def save(
        self,
        path: str | Path,
        *,
        metadata: Mapping[str, object] | None = None,
    ) -> Path:
        """Persist the captured trace; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fp:
            json.dump(self.trace(metadata=metadata), fp, indent=2,
                      sort_keys=True)
            fp.write("\n")
        return path
