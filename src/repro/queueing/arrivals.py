"""Arrival processes for the queueing experiments.

The paper (following Snavely et al.) assumes exponentially distributed
job inter-arrival times and job sizes.  :func:`poisson_arrivals`
generates exactly that; :func:`saturated_arrivals` front-loads every job
at time zero, which turns the latency experiment into the
maximum-throughput experiment of Figure 6 (the machine never starves).
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.errors import SimulationError
from repro.queueing.job import Job
from repro.util.rng import make_rng

__all__ = ["poisson_arrivals", "saturated_arrivals"]


def _job_size(rng: random.Random, mean_size: float, fixed: bool) -> float:
    if fixed:
        return mean_size
    return rng.expovariate(1.0 / mean_size)


def poisson_arrivals(
    types: Sequence[str],
    *,
    rate: float,
    n_jobs: int,
    mean_size: float = 1.0,
    fixed_sizes: bool = False,
    seed: int | random.Random = 0,
) -> Iterator[Job]:
    """Poisson arrivals with uniformly random types.

    Args:
        types: equiprobable job types.
        rate: arrival rate in jobs per unit time.
        n_jobs: number of jobs to generate.
        mean_size: mean job size (work units).
        fixed_sizes: use constant ``mean_size`` instead of exponential.
        seed: RNG seed or generator.

    Yields:
        :class:`~repro.queueing.job.Job` objects in arrival order.
    """
    if rate <= 0.0:
        raise SimulationError(f"arrival rate must be positive, got {rate}")
    if n_jobs < 0:
        raise SimulationError(f"n_jobs must be >= 0, got {n_jobs}")
    if not types:
        raise SimulationError("need at least one job type")
    rng = make_rng(seed)
    clock = 0.0
    for job_id in range(n_jobs):
        clock += rng.expovariate(rate)
        yield Job(
            job_id=job_id,
            job_type=rng.choice(list(types)),
            size=_job_size(rng, mean_size, fixed_sizes),
            arrival_time=clock,
        )


def saturated_arrivals(
    types: Sequence[str],
    *,
    n_jobs: int,
    mean_size: float = 1.0,
    fixed_sizes: bool = False,
    seed: int | random.Random = 0,
) -> Iterator[Job]:
    """All jobs available at time zero: the maximum-throughput workload.

    Equivalent to an arrival rate far above the service rate, as in the
    paper's Figure-6 experiment ("arrival rate > maximum throughput").
    """
    if n_jobs < 0:
        raise SimulationError(f"n_jobs must be >= 0, got {n_jobs}")
    if not types:
        raise SimulationError("need at least one job type")
    rng = make_rng(seed)
    for job_id in range(n_jobs):
        yield Job(
            job_id=job_id,
            job_type=rng.choice(list(types)),
            size=_job_size(rng, mean_size, fixed_sizes),
            arrival_time=0.0,
        )
