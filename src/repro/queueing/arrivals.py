"""Arrival processes for the queueing experiments and scenarios.

The paper (following Snavely et al.) assumes exponentially distributed
job inter-arrival times and job sizes.  :func:`poisson_arrivals`
generates exactly that; :func:`saturated_arrivals` front-loads every job
at time zero, which turns the latency experiment into the
maximum-throughput experiment of Figure 6 (the machine never starves).

The scenario subsystem (:mod:`repro.queueing.scenarios`) adds the
traffic shapes cluster traces actually exhibit:

* :func:`mmpp_arrivals` — a cyclic Markov-modulated Poisson process:
  the arrival rate jumps between states (burst / lull), producing the
  correlated bursts that break PASTA-style intuition.
* :func:`diurnal_arrivals` — a sinusoidally-modulated Poisson process
  (exact Lewis–Shedler thinning): the day/night load swing.
* :func:`batch_arrivals` — Poisson batch epochs with geometric batch
  sizes: many jobs landing in the same instant.

Trace replay lives in :mod:`repro.queueing.trace`.

RNG streams
-----------

Every generator here draws from *purpose-derived* streams
(:func:`repro.util.rng.derive_rng`): inter-arrival times, job types,
and job sizes each get their own child generator.  Swapping the size
distribution of a scenario therefore never reorders the arrival-time
draws — the timestamps are bit-identical across size models.

One deliberate exception: the **legacy path** of
:func:`poisson_arrivals` / :func:`saturated_arrivals` (no
``size_model``, no ``type_weights``) keeps the seed engine's original
single-stream draw order — inter-arrival, type, size, interleaved —
because every Section-VI artifact is pinned bit-identical to it
(``tests/unit/test_arrivals.py::TestLegacyCompatibility`` hard-codes
the expected stream).  Passing ``size_model`` or ``type_weights``
opts into the derived-stream path.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Mapping, Sequence

from repro.errors import SimulationError
from repro.queueing.job import Job
from repro.queueing.sizes import SizeModel, make_size_model
from repro.util.rng import derive_rng, make_rng

__all__ = [
    "poisson_arrivals",
    "saturated_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
    "batch_arrivals",
]

_INF = float("inf")


def _job_size(rng: random.Random, mean_size: float, fixed: bool) -> float:
    if fixed:
        return mean_size
    return rng.expovariate(1.0 / mean_size)


def _check_types(types: Sequence[str]) -> list[str]:
    if not types:
        raise SimulationError("need at least one job type")
    return list(types)


def _check_n_jobs(n_jobs: int) -> None:
    if n_jobs < 0:
        raise SimulationError(f"n_jobs must be >= 0, got {n_jobs}")


class _JobFactory:
    """Types and sizes from their own derived streams (new-path only).

    Centralizes the per-purpose RNG split: ``types`` draws never
    interleave with ``sizes`` draws, so the type sequence of a scenario
    is invariant under size-model swaps and vice versa.
    """

    def __init__(
        self,
        types: Sequence[str],
        type_weights: Mapping[str, float] | None,
        size_model: SizeModel | Mapping[str, object] | None,
        seed: "int | random.Random",
    ) -> None:
        self.types = _check_types(types)
        self.model = make_size_model(size_model)
        self.weights: list[float] | None = None
        if type_weights is not None:
            weights = [float(type_weights.get(t, 0.0)) for t in self.types]
            if any(w < 0.0 for w in weights):
                raise SimulationError("type weights must be non-negative")
            if sum(weights) <= 0.0:
                raise SimulationError(
                    "type weights must have positive total over the types"
                )
            self.weights = weights
        self._type_rng = derive_rng(seed, "types")
        self._size_rng = derive_rng(seed, "sizes")

    def job(self, job_id: int, arrival_time: float) -> Job:
        if self.weights is None:
            job_type = self._type_rng.choice(self.types)
        else:
            job_type = self._type_rng.choices(
                self.types, weights=self.weights
            )[0]
        return Job(
            job_id=job_id,
            job_type=job_type,
            size=self.model.sample(self._size_rng),
            arrival_time=arrival_time,
        )


def poisson_arrivals(
    types: Sequence[str],
    *,
    rate: float,
    n_jobs: int,
    mean_size: float = 1.0,
    fixed_sizes: bool = False,
    size_model: SizeModel | Mapping[str, object] | None = None,
    type_weights: Mapping[str, float] | None = None,
    seed: int | random.Random = 0,
) -> Iterator[Job]:
    """Poisson arrivals; uniform random types unless weighted.

    Args:
        types: job types (equiprobable unless ``type_weights``).
        rate: arrival rate in jobs per unit time.
        n_jobs: number of jobs to generate.
        mean_size: mean job size (legacy path; ignored with
            ``size_model``).
        fixed_sizes: use constant ``mean_size`` instead of exponential
            (legacy path; ignored with ``size_model``).
        size_model: optional :class:`~repro.queueing.sizes.SizeModel`
            (or its spec dict); opts into the derived-stream path.
        type_weights: optional type → weight map; opts into the
            derived-stream path.
        seed: RNG seed or generator.

    Yields:
        :class:`~repro.queueing.job.Job` objects in arrival order.
    """
    if rate <= 0.0:
        raise SimulationError(f"arrival rate must be positive, got {rate}")
    _check_n_jobs(n_jobs)
    _check_types(types)
    if size_model is None and type_weights is None:
        # Legacy single-stream path, frozen for bit-compatibility with
        # the seed engine's Section-VI artifacts (see module docstring).
        rng = make_rng(seed)
        clock = 0.0
        for job_id in range(n_jobs):
            clock += rng.expovariate(rate)
            yield Job(
                job_id=job_id,
                job_type=rng.choice(list(types)),
                size=_job_size(rng, mean_size, fixed_sizes),
                arrival_time=clock,
            )
        return
    factory = _JobFactory(types, type_weights, size_model, seed)
    times = derive_rng(seed, "arrivals")
    clock = 0.0
    for job_id in range(n_jobs):
        clock += times.expovariate(rate)
        yield factory.job(job_id, clock)


def saturated_arrivals(
    types: Sequence[str],
    *,
    n_jobs: int,
    mean_size: float = 1.0,
    fixed_sizes: bool = False,
    size_model: SizeModel | Mapping[str, object] | None = None,
    type_weights: Mapping[str, float] | None = None,
    seed: int | random.Random = 0,
) -> Iterator[Job]:
    """All jobs available at time zero: the maximum-throughput workload.

    Equivalent to an arrival rate far above the service rate, as in the
    paper's Figure-6 experiment ("arrival rate > maximum throughput").
    Like :func:`poisson_arrivals`, the legacy signature keeps the seed
    engine's single-stream draw order; ``size_model`` / ``type_weights``
    use derived streams.
    """
    _check_n_jobs(n_jobs)
    _check_types(types)
    if size_model is None and type_weights is None:
        rng = make_rng(seed)
        for job_id in range(n_jobs):
            yield Job(
                job_id=job_id,
                job_type=rng.choice(list(types)),
                size=_job_size(rng, mean_size, fixed_sizes),
                arrival_time=0.0,
            )
        return
    factory = _JobFactory(types, type_weights, size_model, seed)
    for job_id in range(n_jobs):
        yield factory.job(job_id, 0.0)


def mmpp_arrivals(
    types: Sequence[str],
    *,
    state_rates: Sequence[float],
    mean_dwells: Sequence[float],
    n_jobs: int,
    size_model: SizeModel | Mapping[str, object] | None = None,
    type_weights: Mapping[str, float] | None = None,
    seed: int | random.Random = 0,
) -> Iterator[Job]:
    """Cyclic Markov-modulated Poisson arrivals (bursty traffic).

    The modulating chain cycles through its states (0 → 1 → … → 0);
    state *s* lasts an exponential dwell with mean ``mean_dwells[s]``
    and emits arrivals at rate ``state_rates[s]`` while active.  A
    two-state (burst, lull) instance is the classic bursty-traffic
    model; with every ``state_rates[s]`` equal the process degenerates
    to a plain Poisson process of that rate (the modulation becomes
    unobservable), which a property test checks distributionally.

    The long-run mean rate is the dwell-weighted state-rate average:
    ``sum(r_s * d_s) / sum(d_s)``.

    Args:
        types: job types.
        state_rates: arrival rate per modulating state (>= 0, at least
            one positive).
        mean_dwells: mean dwell time per state (> 0), same length.
        n_jobs: number of jobs to generate.
        size_model: job-size law (default unit-mean exponential).
        type_weights: optional type → weight map (default uniform).
        seed: RNG seed or generator.
    """
    _check_n_jobs(n_jobs)
    if len(state_rates) != len(mean_dwells) or not state_rates:
        raise SimulationError(
            "state_rates and mean_dwells must be equal-length and non-empty"
        )
    if any(rate < 0.0 for rate in state_rates):
        raise SimulationError("state rates must be non-negative")
    if not any(rate > 0.0 for rate in state_rates):
        raise SimulationError("at least one state rate must be positive")
    if any(dwell <= 0.0 for dwell in mean_dwells):
        raise SimulationError("mean dwell times must be positive")
    factory = _JobFactory(types, type_weights, size_model, seed)
    times = derive_rng(seed, "arrivals")
    n_states = len(state_rates)
    clock = 0.0
    state = 0
    dwell_left = times.expovariate(1.0 / mean_dwells[state])
    for job_id in range(n_jobs):
        while True:
            rate = state_rates[state]
            gap = times.expovariate(rate) if rate > 0.0 else _INF
            if gap <= dwell_left:
                clock += gap
                dwell_left -= gap
                break
            # The dwell expires first: advance to the switch and redraw
            # the arrival gap in the new state (exact by memorylessness).
            clock += dwell_left
            state = (state + 1) % n_states
            dwell_left = times.expovariate(1.0 / mean_dwells[state])
        yield factory.job(job_id, clock)


def diurnal_arrivals(
    types: Sequence[str],
    *,
    base_rate: float,
    amplitude: float,
    period: float,
    n_jobs: int,
    size_model: SizeModel | Mapping[str, object] | None = None,
    type_weights: Mapping[str, float] | None = None,
    seed: int | random.Random = 0,
) -> Iterator[Job]:
    """Sinusoidal-rate Poisson arrivals (the day/night swing).

    The instantaneous rate is ``base_rate * (1 + amplitude *
    sin(2*pi*t/period))``, sampled exactly by Lewis–Shedler thinning
    against the peak rate.  The long-run mean rate is ``base_rate``
    (the sine averages out over whole periods).

    Args:
        types: job types.
        base_rate: mean arrival rate (> 0).
        amplitude: relative swing in [0, 1]; 0 degenerates to Poisson,
            1 silences the trough entirely.
        period: cycle length in simulation time units (> 0).
        n_jobs: number of jobs to generate.
        size_model: job-size law (default unit-mean exponential).
        type_weights: optional type → weight map (default uniform).
        seed: RNG seed or generator.
    """
    _check_n_jobs(n_jobs)
    if base_rate <= 0.0:
        raise SimulationError(f"base_rate must be positive, got {base_rate}")
    if not 0.0 <= amplitude <= 1.0:
        raise SimulationError(
            f"amplitude must be in [0, 1], got {amplitude}"
        )
    if period <= 0.0:
        raise SimulationError(f"period must be positive, got {period}")
    factory = _JobFactory(types, type_weights, size_model, seed)
    times = derive_rng(seed, "arrivals")
    peak = base_rate * (1.0 + amplitude)
    two_pi = 2.0 * math.pi
    clock = 0.0
    for job_id in range(n_jobs):
        while True:
            clock += times.expovariate(peak)
            rate = base_rate * (
                1.0 + amplitude * math.sin(two_pi * clock / period)
            )
            if times.random() * peak <= rate:
                break
        yield factory.job(job_id, clock)


def batch_arrivals(
    types: Sequence[str],
    *,
    batch_rate: float,
    mean_batch_size: float,
    n_jobs: int,
    size_model: SizeModel | Mapping[str, object] | None = None,
    type_weights: Mapping[str, float] | None = None,
    seed: int | random.Random = 0,
) -> Iterator[Job]:
    """Poisson batch epochs, geometric batch sizes (arrival storms).

    Batch epochs form a Poisson process of rate ``batch_rate``; each
    epoch lands a shifted-geometric number of jobs (support 1, 2, …,
    mean ``mean_batch_size``) at the *same* timestamp — the scenario
    that stresses dispatchers hardest, since a whole batch must be
    placed against one queue snapshot.  The long-run mean job rate is
    ``batch_rate * mean_batch_size``; the final batch is truncated at
    ``n_jobs``.

    Args:
        types: job types.
        batch_rate: batch-epoch rate (> 0).
        mean_batch_size: mean jobs per batch (>= 1).
        n_jobs: total jobs to generate (last batch truncated).
        size_model: job-size law (default unit-mean exponential).
        type_weights: optional type → weight map (default uniform).
        seed: RNG seed or generator.
    """
    _check_n_jobs(n_jobs)
    if batch_rate <= 0.0:
        raise SimulationError(
            f"batch_rate must be positive, got {batch_rate}"
        )
    if mean_batch_size < 1.0:
        raise SimulationError(
            f"mean_batch_size must be >= 1, got {mean_batch_size}"
        )
    factory = _JobFactory(types, type_weights, size_model, seed)
    times = derive_rng(seed, "arrivals")
    success = 1.0 / mean_batch_size
    clock = 0.0
    job_id = 0
    while job_id < n_jobs:
        clock += times.expovariate(batch_rate)
        if success >= 1.0:
            batch = 1
        else:
            # Inverse-CDF shifted geometric: P(K = k) = p * (1-p)^(k-1).
            u = times.random()
            batch = max(
                1, math.ceil(math.log1p(-u) / math.log1p(-success))
            )
        for _ in range(batch):
            if job_id >= n_jobs:
                break
            yield factory.job(job_id, clock)
            job_id += 1
