"""The Section-VI experiments: latency (Figure 5) and saturation (Figure 6).

**Latency experiment** — jobs arrive as a Poisson process at a given
*load* (fraction of the FCFS maximum throughput, which the paper
computes with TPCalc and we compute with
:func:`repro.core.fcfs.fcfs_throughput`).  Reported metrics: mean
turnaround time, processor utilization (average busy contexts), and the
fraction of time the system is empty.

**Saturation experiment** — all jobs are present from the start (arrival
rate effectively above the maximum throughput); the measured quantity is
the achieved long-term throughput, which for MAXTP should match the LP
maximum and for FCFS the TPCalc value.

Both experiments accept any :class:`~repro.microarch.rates.RateSource`,
including a :class:`~repro.microarch.rate_cache.CachedRateSource`
wrapper — cached and uncached sources produce bit-identical
:class:`~repro.queueing.system.SystemMetrics` (a property test pins
this), so the persisted cache is a pure speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fcfs import fcfs_throughput
from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.rates import RateSource, infer_contexts
from repro.queueing.arrivals import poisson_arrivals, saturated_arrivals
from repro.queueing.engine import run_system
from repro.queueing.schedulers import make_scheduler
from repro.queueing.system import SystemMetrics

__all__ = [
    "LatencyResult",
    "SaturationResult",
    "run_latency_experiment",
    "run_saturation_experiment",
]


@dataclass(frozen=True)
class LatencyResult:
    """Outcome of one latency experiment.

    Attributes:
        scheduler_name: policy used.
        workload: the workload.
        load: requested load as a fraction of FCFS maximum throughput.
        arrival_rate: resulting arrival rate (jobs per unit time).
        metrics: raw accumulated system metrics.
    """

    scheduler_name: str
    workload: Workload
    load: float
    arrival_rate: float
    metrics: SystemMetrics

    @property
    def mean_turnaround(self) -> float:
        """Average job turnaround time."""
        return self.metrics.mean_turnaround

    @property
    def utilization(self) -> float:
        """Average number of busy contexts."""
        return self.metrics.utilization

    @property
    def empty_fraction(self) -> float:
        """Fraction of time the system holds no jobs."""
        return self.metrics.empty_fraction


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of one saturation (maximum-throughput) experiment."""

    scheduler_name: str
    workload: Workload
    metrics: SystemMetrics

    @property
    def throughput(self) -> float:
        """Achieved long-term throughput (WIPC)."""
        return self.metrics.throughput


def run_latency_experiment(
    rates: RateSource,
    workload: Workload,
    scheduler_name: str,
    *,
    load: float,
    n_jobs: int = 20_000,
    warmup_fraction: float = 0.1,
    mean_size: float = 1.0,
    fixed_sizes: bool = False,
    seed: int = 0,
    contexts: int | None = None,
) -> LatencyResult:
    """Poisson-arrival experiment at a fraction of FCFS max throughput.

    Args:
        rates: per-coschedule execution rates.
        workload: the N equiprobable job types.
        scheduler_name: "fcfs", "maxit", "srpt", or "maxtp".
        load: arrival rate as a fraction of the FCFS maximum throughput
            (the paper uses 0.8 / 0.9 / 0.95).
        n_jobs: number of arrivals to simulate.
        warmup_fraction: fraction of expected run time discarded.
        mean_size: mean job size in work units.
        fixed_sizes: constant job sizes instead of exponential.
        seed: RNG seed (same seed => same arrival sequence for every
            scheduler, enabling paired comparisons).
        contexts: context count K (inferred when possible).
    """
    if not 0.0 < load:
        raise WorkloadError(f"load must be positive, got {load}")
    k = infer_contexts(rates, contexts)
    max_tp = fcfs_throughput(rates, workload, contexts=k).throughput
    arrival_rate = load * max_tp / mean_size

    scheduler = make_scheduler(scheduler_name, rates, k, workload=workload)
    arrivals = poisson_arrivals(
        workload.types,
        rate=arrival_rate,
        n_jobs=n_jobs,
        mean_size=mean_size,
        fixed_sizes=fixed_sizes,
        seed=seed,
    )
    expected_duration = n_jobs / arrival_rate
    metrics = run_system(
        rates,
        scheduler,
        arrivals,
        warmup_time=warmup_fraction * expected_duration,
    )
    return LatencyResult(
        scheduler_name=scheduler.name,
        workload=workload,
        load=load,
        arrival_rate=arrival_rate,
        metrics=metrics,
    )


def run_saturation_experiment(
    rates: RateSource,
    workload: Workload,
    scheduler_name: str,
    *,
    n_jobs: int = 4_000,
    backlog: int = 16,
    mean_size: float = 1.0,
    fixed_sizes: bool = False,
    seed: int = 0,
    contexts: int | None = None,
) -> SaturationResult:
    """Maximum-throughput experiment: all jobs queued from time zero.

    The scheduler sees a bounded backlog window of ``backlog`` jobs
    (refilled on every completion), and the run stops as soon as fewer
    jobs than contexts remain, so the machine is fully loaded for the
    whole measurement window (no drain tail with idle contexts).
    """
    k = infer_contexts(rates, contexts)
    if backlog < k:
        raise WorkloadError(f"backlog {backlog} must be at least K={k}")
    scheduler = make_scheduler(scheduler_name, rates, k, workload=workload)
    arrivals = saturated_arrivals(
        workload.types,
        n_jobs=n_jobs,
        mean_size=mean_size,
        fixed_sizes=fixed_sizes,
        seed=seed,
    )
    metrics = run_system(
        rates,
        scheduler,
        arrivals,
        stop_when_fewer_than=k,
        keep_in_system=backlog,
    )
    return SaturationResult(
        scheduler_name=scheduler.name,
        workload=workload,
        metrics=metrics,
    )
