"""Rate-based discrete-event engine.

Jobs progress at rates that depend on the currently running coschedule
(the per-job WIPC from the rate source), so the simulation advances
from event to event: the next event is either the earliest completion
under the current rates or the next arrival.  After every event the
scheduler re-selects the running set — context-switch costs are not
modeled, matching the paper ("effects that are not modeled in this
experiment").

Per-coschedule job rates are memoized for the duration of a run: the
engine asks the rate source once per distinct running multiset instead
of once per event, which removes the dominant cost of long runs even
when the source itself is uncached (and composes with the persistent
:class:`~repro.microarch.rate_cache.CachedRateSource` layer, which
removes the simulator cost across runs and processes).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.errors import SimulationError
from repro.microarch.rates import RateSource
from repro.queueing.job import Job
from repro.queueing.schedulers import Scheduler
from repro.queueing.system import SystemMetrics

__all__ = ["run_system"]

_EPSILON = 1e-9


def _per_job_type_rates(
    rates: RateSource, coschedule: tuple[str, ...]
) -> dict[str, float]:
    """Execution rate (work per unit time) of one job of each type.

    Same-type jobs are symmetric, so the rate depends only on the
    coschedule multiset — which is what makes per-run memoization by
    coschedule exact.
    """
    if not coschedule:
        return {}
    type_rates = rates.type_rates(coschedule)
    counts = Counter(coschedule)
    return {
        job_type: type_rates.get(job_type, 0.0) / count
        for job_type, count in counts.items()
    }


def run_system(
    rates: RateSource,
    scheduler: Scheduler,
    arrivals: Iterable[Job],
    *,
    warmup_time: float = 0.0,
    horizon: float | None = None,
    stop_when_fewer_than: int | None = None,
    keep_in_system: int | None = None,
    max_events: int = 5_000_000,
) -> SystemMetrics:
    """Run the queueing system to completion and return its metrics.

    Args:
        rates: per-coschedule execution rates.
        scheduler: the scheduling policy (re-invoked at every event).
        arrivals: jobs in non-decreasing arrival order.
        warmup_time: observations before this time are discarded.
        horizon: optional hard stop time.
        stop_when_fewer_than: stop once the system holds fewer jobs
            than this (used by the saturation experiment to cut the
            drain tail, keeping the machine fully loaded throughout the
            measurement).
        keep_in_system: cap on concurrently admitted jobs.  Due
            arrivals beyond the cap stay outside until a completion
            frees room (a bounded backlog: the saturation experiment
            admits a window of the job pool instead of all of it, which
            keeps scheduler decisions cheap without starving it of
            choices).
        max_events: safety bound on processed events.

    Returns:
        Accumulated :class:`~repro.queueing.system.SystemMetrics`.
    """
    stream: Iterator[Job] = iter(arrivals)
    pending: Job | None = next(stream, None)
    jobs: list[Job] = []
    metrics = SystemMetrics()
    clock = 0.0
    last_arrival = -1.0
    # Per-run memo: coschedule multiset -> per-job rate of each type.
    rate_memo: dict[tuple[str, ...], dict[str, float]] = {}

    for _ in range(max_events):
        # Admit every arrival due now (handles batched time-zero jobs).
        while (
            pending is not None
            and pending.arrival_time <= clock + _EPSILON
            and (keep_in_system is None or len(jobs) < keep_in_system)
        ):
            if pending.arrival_time < last_arrival - _EPSILON:
                raise SimulationError("arrivals out of order")
            last_arrival = pending.arrival_time
            jobs.append(pending)
            pending = next(stream, None)

        if stop_when_fewer_than is not None and pending is None:
            if len(jobs) < stop_when_fewer_than:
                break
        if not jobs and pending is None:
            break
        if horizon is not None and clock >= horizon:
            break

        running = scheduler.select(jobs, clock) if jobs else []
        if len(running) > scheduler.contexts:
            raise SimulationError(
                f"{scheduler.name} selected {len(running)} jobs for "
                f"{scheduler.contexts} contexts"
            )
        ids = {job.job_id for job in running}
        if len(ids) != len(running):
            raise SimulationError(f"{scheduler.name} selected a job twice")

        coschedule = tuple(sorted(job.job_type for job in running))
        job_rates = rate_memo.get(coschedule)
        if job_rates is None:
            job_rates = _per_job_type_rates(rates, coschedule)
            rate_memo[coschedule] = job_rates
        next_completion = float("inf")
        for job in running:
            rate = job_rates[job.job_type]
            if rate <= 0.0:
                raise SimulationError(
                    f"job {job.job_id} ({job.job_type}) has zero rate in "
                    "its coschedule"
                )
            next_completion = min(next_completion, job.remaining / rate)

        # A due-but-not-admitted arrival (bounded backlog at capacity)
        # must not produce zero-length steps: the next admission can
        # only happen at a completion, so ignore it for time stepping.
        can_admit = keep_in_system is None or len(jobs) < keep_in_system
        next_arrival = (
            pending.arrival_time - clock
            if (pending is not None and can_admit)
            else float("inf")
        )
        dt = min(next_completion, next_arrival)
        if horizon is not None:
            dt = min(dt, horizon - clock)
        if dt == float("inf"):
            raise SimulationError("no progress possible: idle with no arrivals")
        dt = max(dt, 0.0)

        # Advance time, progressing the running jobs.
        work = 0.0
        for job in running:
            step = job_rates[job.job_type] * dt
            job.progress(step)
            work += step

        measured_dt = min(clock + dt, float("inf")) - max(clock, warmup_time)
        if measured_dt > 0.0:
            fraction = measured_dt / dt if dt > 0.0 else 0.0
            metrics.observe_interval(
                measured_dt, coschedule, len(jobs), work * fraction
            )
        scheduler.observe(coschedule, dt)
        clock += dt

        # Completions.
        finished = [job for job in running if job.done]
        for job in finished:
            job.completion_time = clock
            if clock >= warmup_time:
                metrics.observe_completion(job.turnaround)
        if finished:
            done_ids = {job.job_id for job in finished}
            jobs = [job for job in jobs if job.job_id not in done_ids]
    else:
        raise SimulationError(
            f"simulation exceeded {max_events} events without terminating"
        )

    return metrics
