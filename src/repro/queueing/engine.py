"""Rate-based discrete-event engine (single-machine front door).

Jobs progress at rates that depend on the currently running coschedule
(the per-job WIPC from the rate source), so the simulation advances
from event to event: the next event is either the earliest completion
under the current rates or the next arrival.  After every event the
scheduler re-selects the running set — context-switch costs are not
modeled, matching the paper ("effects that are not modeled in this
experiment").

:func:`run_system` is the M=1 special case of the cluster event core
(:mod:`repro.queueing.cluster`): one machine, a trivial dispatcher, and
the same shared per-run rate memo — the engine asks the rate source
once per distinct running multiset instead of once per event, and the
schedulers' candidate probing (MAXIT/SRPT) hits the same memo.  A
property test pins the wrapper's :class:`SystemMetrics` bit-identical
to the original single-machine loop, so every Section-VI experiment is
unchanged; multi-machine scenarios use
:func:`repro.queueing.cluster.run_cluster` directly.
"""

from __future__ import annotations

from typing import Iterable

from repro.microarch.rates import RateSource
from repro.queueing.cluster import run_cluster
from repro.queueing.dispatch import RoundRobinDispatcher
from repro.queueing.job import Job
from repro.queueing.schedulers import Scheduler
from repro.queueing.system import SystemMetrics

__all__ = ["run_system"]


def run_system(
    rates: RateSource,
    scheduler: Scheduler,
    arrivals: Iterable[Job],
    *,
    warmup_time: float = 0.0,
    horizon: float | None = None,
    stop_when_fewer_than: int | None = None,
    keep_in_system: int | None = None,
    max_events: int = 5_000_000,
) -> SystemMetrics:
    """Run the single-machine queueing system and return its metrics.

    Args:
        rates: per-coschedule execution rates.
        scheduler: the scheduling policy (re-invoked at every event).
        arrivals: jobs in non-decreasing arrival order.
        warmup_time: observations before this time are discarded.
        horizon: optional hard stop time.
        stop_when_fewer_than: stop once the system holds fewer jobs
            than this (used by the saturation experiment to cut the
            drain tail, keeping the machine fully loaded throughout the
            measurement).
        keep_in_system: cap on concurrently admitted jobs.  Due
            arrivals beyond the cap stay outside until a completion
            frees room (a bounded backlog: the saturation experiment
            admits a window of the job pool instead of all of it, which
            keeps scheduler decisions cheap without starving it of
            choices).
        max_events: safety bound on processed events.

    Returns:
        Accumulated :class:`~repro.queueing.system.SystemMetrics`.
    """
    metrics = run_cluster(
        rates,
        [scheduler],
        RoundRobinDispatcher(),
        arrivals,
        warmup_time=warmup_time,
        horizon=horizon,
        stop_when_fewer_than=stop_when_fewer_than,
        keep_in_system=keep_in_system,
        max_events=max_events,
    )
    return metrics.per_machine[0]
