"""Estimated symbiosis rates: the observation-driven policy layer.

Every scheduler in the reproduction reads symbiosis rates through the
:class:`~repro.microarch.rates.RateSource` protocol, historically
straight from the microarch model — an oracle the paper's real SMT
hardware never had.  This module adds the realistic alternative in the
Gavel/Shockwave idiom: policies decide on *estimates* maintained from
noisy observed progress, while the simulator keeps stepping jobs with
the true rates (the physics never lies; only the scheduler's view of
it does).

Two sources implement the split:

* :class:`OracleRateSource` — a transparent wrapper, bit-identical to
  reading the wrapped source directly.  It exists so callers can spell
  both modes the same way (``rate_source="oracle"``).
* :class:`ThroughputEstimator` — maintains per-coschedule EMA
  estimates (``est += alpha * (observed - est)``) from observations
  fed by the engines' sync loop, with configurable multiplicative or
  additive observation noise drawn from a dedicated derived RNG stream
  (:func:`repro.util.rng.derive_rng`), cold-start priors built from
  single-run profiles, per-coschedule confidence tracked by
  observation count, and **epoch publishing**: observations accumulate
  into a pending table and only become visible to policies when the
  estimator publishes (every ``reopt_observations`` observations), at
  which point registered listeners fire — the cluster uses them to
  flush the policy-side rate memo and re-solve dispatcher affinity
  matrices (the "periodic re-optimization rounds").

Bit-identity discipline (load-bearing for the differential harness):
with ``noise=0`` and the warm ``"oracle"`` prior, every estimate is
initialized to the exact true float and the EMA update adds exactly
``alpha * 0.0``, so estimates stay bit-equal to the oracle forever and
estimated-mode runs are pick-for-pick identical to oracle mode.  The
update is deliberately written ``e + alpha * (o - e)`` — the algebraic
twin ``(1-alpha)*e + alpha*o`` would *not* round-trip bit-exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import EstimationError
from repro.microarch.rates import RateSource, canonical_coschedule
from repro.util.rng import derive_rng

__all__ = [
    "EstimationConfig",
    "OracleRateSource",
    "ThroughputEstimator",
    "NOISE_MODELS",
    "PRIORS",
    "EMA_ALPHA",
    "REOPT_OBSERVATIONS",
]

NOISE_MODELS = ("multiplicative", "additive")
PRIORS = ("oracle", "optimistic", "pessimistic", "single_run")

# Gavel/Shockwave defaults (SNIPPETS.md Snippet 2): a fast-moving EMA
# republished to the optimizer every few rounds of observations.
EMA_ALPHA = 0.5
REOPT_OBSERVATIONS = 64

NOISE_STREAM = "observation-noise"


@dataclass(frozen=True)
class EstimationConfig:
    """Knobs of a :class:`ThroughputEstimator`.

    Attributes:
        alpha: EMA smoothing factor in ``(0, 1]`` (1.0 = keep only the
            latest observation).
        noise: observation-noise level.  Multiplicative noise scales
            each observed rate by ``1 + noise * N(0, 1)``; additive
            noise adds ``noise * N(0, 1)`` in absolute rate units.
            ``0.0`` reproduces the true rates bit for bit.
        noise_model: ``"multiplicative"`` or ``"additive"``.
        prior: cold-start estimate for a coschedule never observed.
            ``"oracle"`` warm-starts at the true rates (the
            equivalence-test mode); the realistic modes query the true
            source only for *single-run* (size-1) coschedules — the
            profiling the paper's hardware could actually do — and
            assume ``"optimistic"`` (no interference),
            ``"pessimistic"`` (full time-sharing, alone rate divided
            by the coschedule size), or ``"single_run"`` (the midpoint
            degradation ``2 / (1 + size)`` between those two).
        reopt_observations: publish the pending estimates (and fire
            re-optimization listeners) every this many observations;
            ``0`` disables periodic publishing entirely.
        confidence_scale: half-saturation constant of the confidence
            curve ``n / (n + scale)``.
        seed: seed of the dedicated ``observation-noise`` RNG stream.
    """

    alpha: float = EMA_ALPHA
    noise: float = 0.0
    noise_model: str = "multiplicative"
    prior: str = "oracle"
    reopt_observations: int = REOPT_OBSERVATIONS
    confidence_scale: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise EstimationError(
                f"alpha must be in (0, 1], got {self.alpha}"
            )
        if not self.noise >= 0.0:
            raise EstimationError(
                f"noise level must be non-negative, got {self.noise}"
            )
        if self.noise_model not in NOISE_MODELS:
            raise EstimationError(
                f"unknown noise model {self.noise_model!r}; "
                f"choose one of {NOISE_MODELS}"
            )
        if self.prior not in PRIORS:
            raise EstimationError(
                f"unknown prior {self.prior!r}; choose one of {PRIORS}"
            )
        if self.reopt_observations < 0:
            raise EstimationError(
                "reopt_observations must be >= 0, "
                f"got {self.reopt_observations}"
            )
        if not self.confidence_scale > 0.0:
            raise EstimationError(
                f"confidence_scale must be positive, "
                f"got {self.confidence_scale}"
            )


class OracleRateSource:
    """Transparent pass-through: policies see the true rates.

    ``type_rates`` returns the wrapped source's mapping unchanged (no
    copy, no reordering), so wrapping is bit-identical to not
    wrapping.  Unknown attributes delegate to the wrapped source.
    """

    kind = "oracle"

    def __init__(self, source: RateSource) -> None:
        self.source = source

    def type_rates(self, coschedule: Sequence[str]):
        return self.source.type_rates(coschedule)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.source, name)


class ThroughputEstimator:
    """Per-coschedule EMA rate estimates from noisy observed progress.

    The estimator is a :class:`~repro.microarch.rates.RateSource`:
    ``type_rates`` serves the **published** table, which changes only
    at publish points, so per-run memoization on top of it stays exact
    between re-optimization rounds.  The engines feed it one
    observation per positive-span machine sync via
    :meth:`observe_interval`.

    Args:
        source: the true rate source observations are drawn from (and
            the single-run profiles priors are built from).  Unknown
            attributes delegate to it.
        config: estimation knobs (:class:`EstimationConfig`).
    """

    kind = "estimated"

    def __init__(
        self, source: RateSource, config: EstimationConfig | None = None
    ) -> None:
        self.source = source
        self.config = config if config is not None else EstimationConfig()
        self.epoch = 0
        self.total_observations = 0
        self._since_publish = 0
        self._rng = derive_rng(self.config.seed, NOISE_STREAM)
        self._published: dict[tuple[str, ...], dict[str, float]] = {}
        self._pending: dict[tuple[str, ...], dict[str, float]] = {}
        self._counts: dict[tuple[str, ...], int] = {}
        self._alone: dict[str, float] = {}
        self._listeners: list[Callable[["ThroughputEstimator"], None]] = []

    # ------------------------------------------------------------------
    # RateSource protocol: serve the published estimates
    # ------------------------------------------------------------------
    def type_rates(self, coschedule: Sequence[str]) -> dict[str, float]:
        """Published estimate for ``coschedule`` (prior on first sight)."""
        key = canonical_coschedule(tuple(coschedule))
        entry = self._published.get(key)
        if entry is None:
            entry = self._cold_start(key)
        return entry

    def _cold_start(self, key: tuple[str, ...]) -> dict[str, float]:
        prior = self._prior_entry(key)
        self._published[key] = prior
        self._pending[key] = dict(prior)
        return prior

    def _alone_rate(self, name: str) -> float:
        rate = self._alone.get(name)
        if rate is None:
            rate = self.source.type_rates((name,))[name]
            self._alone[name] = rate
        return rate

    def _prior_entry(self, key: tuple[str, ...]) -> dict[str, float]:
        mode = self.config.prior
        if mode == "oracle":
            # Warm start at the exact true floats, in the true source's
            # key order — the zero-noise bit-identity anchor.
            return dict(self.source.type_rates(key))
        size = len(key)
        entry: dict[str, float] = {}
        for name, count in Counter(key).items():
            alone = self._alone_rate(name)
            if mode == "optimistic":
                total = alone * count
            elif mode == "pessimistic":
                total = alone * count / size
            else:  # single_run: midpoint degradation between the two
                total = alone * count * 2.0 / (1.0 + size)
            entry[name] = total if total > 0.0 else 0.0
        return entry

    # ------------------------------------------------------------------
    # Observation feed
    # ------------------------------------------------------------------
    def observe_interval(
        self, coschedule: Sequence[str], span: float
    ) -> None:
        """Fold one observed interval of ``coschedule`` into the
        pending estimates.

        Zero- and negative-span intervals are ignored (the compiled
        engine fuses zero-span syncs away, so skipping them here keeps
        the observation sequence — and therefore the noise-RNG draw
        order — identical across all three engines).
        """
        if span <= 0.0 or not coschedule:
            return
        key = canonical_coschedule(tuple(coschedule))
        truth = self.source.type_rates(key)
        pending = self._pending.get(key)
        if pending is None:
            self._cold_start(key)
            pending = self._pending[key]
        config = self.config
        alpha = config.alpha
        noise = config.noise
        gauss = self._rng.gauss
        if config.noise_model == "multiplicative":
            for name, true_rate in truth.items():
                observed = true_rate * (1.0 + noise * gauss(0.0, 1.0))
                if observed < 0.0:
                    observed = 0.0
                pending[name] = pending[name] + alpha * (
                    observed - pending[name]
                )
        else:
            for name, true_rate in truth.items():
                observed = true_rate + noise * gauss(0.0, 1.0)
                if observed < 0.0:
                    observed = 0.0
                pending[name] = pending[name] + alpha * (
                    observed - pending[name]
                )
        self._counts[key] = self._counts.get(key, 0) + 1
        self.total_observations += 1
        self._since_publish += 1
        interval = config.reopt_observations
        if interval and self._since_publish >= interval:
            self.publish()

    def publish(self) -> None:
        """Expose the pending estimates to policies and fire the
        re-optimization listeners (one "round")."""
        for key, pending in self._pending.items():
            self._published[key] = dict(pending)
        self.epoch += 1
        self._since_publish = 0
        for listener in list(self._listeners):
            listener(self)

    def add_listener(
        self, listener: Callable[["ThroughputEstimator"], None]
    ) -> None:
        """Register a callback fired after every :meth:`publish`."""
        self._listeners.append(listener)

    def remove_listener(
        self, listener: Callable[["ThroughputEstimator"], None]
    ) -> None:
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Confidence and introspection
    # ------------------------------------------------------------------
    def observations(
        self, coschedule: Sequence[str] | None = None
    ) -> int:
        """Observation count for one coschedule (or the grand total)."""
        if coschedule is None:
            return self.total_observations
        key = canonical_coschedule(tuple(coschedule))
        return self._counts.get(key, 0)

    def confidence(self, coschedule: Sequence[str]) -> float:
        """Saturating confidence ``n / (n + scale)`` in ``[0, 1)``."""
        n = self.observations(coschedule)
        return n / (n + self.config.confidence_scale)

    def mean_relative_error(self) -> float:
        """Mean |estimate - truth| / truth over all tracked rates
        (truth-zero rates are skipped)."""
        total = 0.0
        count = 0
        for key, entry in self._published.items():
            truth = self.source.type_rates(key)
            for name, true_rate in truth.items():
                if true_rate > 0.0:
                    total += abs(entry.get(name, 0.0) - true_rate) / true_rate
                    count += 1
        return total / count if count else 0.0

    def stats_dict(self) -> dict[str, object]:
        """JSON-friendly estimator state summary."""
        return {
            "epoch": self.epoch,
            "observations": self.total_observations,
            "tracked_coschedules": len(self._published),
            "mean_relative_error": self.mean_relative_error(),
            "prior": self.config.prior,
            "noise": self.config.noise,
            "noise_model": self.config.noise_model,
        }

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.source, name)
