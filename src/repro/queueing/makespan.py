"""Makespan experiments on small fixed job sets (Section II).

Earlier symbiosis work (Settle et al., PACT 2004; Xu et al., PACT 2010)
evaluated schedulers by the *makespan* of 8-16 jobs run to completion.
The paper points out that "with such small workloads, the effect of
idling cores cannot be neglected": once fewer jobs than contexts remain,
the machine drains half-empty, and a symbiosis-unaware long-job-first
scheduler can beat a symbiosis-aware one simply by avoiding a long
drain tail (Xu et al.'s own finding).

This module reproduces that effect: run a small job set under a chosen
scheduler until the system is empty (drain included) and report the
makespan and the drain time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.rates import RateSource, infer_contexts
from repro.queueing.arrivals import saturated_arrivals
from repro.queueing.engine import run_system
from repro.queueing.schedulers import make_scheduler
from repro.queueing.system import SystemMetrics

__all__ = ["MakespanResult", "run_makespan_experiment"]


@dataclass(frozen=True)
class MakespanResult:
    """Outcome of one makespan experiment.

    Attributes:
        scheduler_name: policy used.
        workload: the job types.
        n_jobs: size of the fixed job set.
        makespan: time from start until the last job completes.
        drain_time: portion of the makespan with idle contexts (fewer
            jobs than contexts remaining).
        metrics: raw system metrics.
    """

    scheduler_name: str
    workload: Workload
    n_jobs: int
    makespan: float
    drain_time: float
    metrics: SystemMetrics

    @property
    def drain_fraction(self) -> float:
        """Share of the makespan spent draining a half-empty machine."""
        if self.makespan == 0.0:
            return 0.0
        return self.drain_time / self.makespan


def run_makespan_experiment(
    rates: RateSource,
    workload: Workload,
    scheduler_name: str,
    *,
    n_jobs: int = 12,
    mean_size: float = 1.0,
    fixed_sizes: bool = False,
    seed: int = 0,
    contexts: int | None = None,
) -> MakespanResult:
    """Run a small fixed job set to completion and measure the makespan.

    All ``n_jobs`` jobs (types drawn uniformly from the workload, sizes
    exponential unless ``fixed_sizes``) are available at time zero; the
    experiment ends when the system is empty — including the drain tail
    that the paper says dominates such small-set comparisons.
    """
    k = infer_contexts(rates, contexts)
    if n_jobs <= 0:
        raise WorkloadError(f"n_jobs must be positive, got {n_jobs}")
    scheduler = make_scheduler(
        scheduler_name, rates, k, workload=workload, seed=seed
    )
    arrivals = saturated_arrivals(
        workload.types,
        n_jobs=n_jobs,
        mean_size=mean_size,
        fixed_sizes=fixed_sizes,
        seed=seed,
    )
    metrics = run_system(rates, scheduler, arrivals)

    makespan = metrics.measured_time
    full_time = sum(
        duration
        for coschedule, duration in metrics.time_by_coschedule.items()
        if len(coschedule) >= k
    )
    return MakespanResult(
        scheduler_name=scheduler.name,
        workload=workload,
        n_jobs=n_jobs,
        makespan=makespan,
        drain_time=makespan - full_time,
        metrics=metrics,
    )
