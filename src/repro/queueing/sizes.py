"""Job-size distributions for the workload scenarios.

The paper (following Snavely et al.) assumes exponentially distributed
job sizes; real cluster traces are famously *not* exponential — they
mix mice and elephants (bimodal) or follow heavy-tailed laws whose few
huge jobs dominate the offered work.  This module packages size laws
as small :class:`SizeModel` objects so arrival processes can sample
any of them from a dedicated RNG stream:

* :class:`ExponentialSizes` — the paper's default (memoryless).
* :class:`FixedSizes` — deterministic unit work (variability ablation).
* :class:`BoundedParetoSizes` — heavy-tailed work with a hard upper
  bound, the standard model for "most jobs are tiny, a few are huge".
* :class:`BimodalSizes` — an explicit mice/elephants mixture of two
  exponentials.

Every model is a frozen dataclass with an exact :attr:`mean` (used by
experiments to convert offered load into an arrival rate) and a
JSON-able :meth:`spec`; :func:`make_size_model` rebuilds a model from
such a spec, so scenarios and recorded traces serialize cleanly.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass

from repro.errors import SimulationError

__all__ = [
    "SizeModel",
    "ExponentialSizes",
    "FixedSizes",
    "BoundedParetoSizes",
    "BimodalSizes",
    "make_size_model",
]


class SizeModel(ABC):
    """One job-size law: a mean, a sampler, and a serializable spec."""

    kind: str = "base"

    @property
    @abstractmethod
    def mean(self) -> float:
        """Exact mean job size (work units)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one job size from ``rng`` (always > 0)."""

    def spec(self) -> dict[str, object]:
        """JSON-able description; :func:`make_size_model` inverts it."""
        payload: dict[str, object] = {"kind": self.kind}
        payload.update(asdict(self))  # type: ignore[call-overload]
        return payload


@dataclass(frozen=True)
class ExponentialSizes(SizeModel):
    """Exponential sizes — the paper's (and M/M/K's) assumption."""

    mean_size: float = 1.0
    kind = "exponential"

    def __post_init__(self) -> None:
        if self.mean_size <= 0.0:
            raise SimulationError(
                f"mean_size must be positive, got {self.mean_size}"
            )

    @property
    def mean(self) -> float:
        return self.mean_size

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_size)


@dataclass(frozen=True)
class FixedSizes(SizeModel):
    """Every job has exactly the same size (zero variability)."""

    size: float = 1.0
    kind = "fixed"

    def __post_init__(self) -> None:
        if self.size <= 0.0:
            raise SimulationError(f"size must be positive, got {self.size}")

    @property
    def mean(self) -> float:
        return self.size

    def sample(self, rng: random.Random) -> float:
        return self.size


@dataclass(frozen=True)
class BoundedParetoSizes(SizeModel):
    """Bounded Pareto on ``[lower, upper]`` with tail index ``alpha``.

    Heavy-tailed work: density ∝ x^-(alpha+1) truncated to the bounds.
    ``alpha`` in (1, 2) gives the classic "elephants carry most of the
    work" regime while the upper bound keeps every simulated run
    finite.  Sampling is exact inverse-CDF, one uniform per job.
    """

    alpha: float = 1.5
    lower: float = 0.1
    upper: float = 50.0
    kind = "bounded_pareto"

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise SimulationError(f"alpha must be positive, got {self.alpha}")
        if not 0.0 < self.lower < self.upper:
            raise SimulationError(
                f"need 0 < lower < upper, got [{self.lower}, {self.upper}]"
            )

    @property
    def mean(self) -> float:
        low, high, alpha = self.lower, self.upper, self.alpha
        ratio = (low / high) ** alpha
        if alpha == 1.0:
            return low * math.log(high / low) / (1.0 - ratio)
        return (
            (alpha / (alpha - 1.0))
            * low**alpha
            * (low ** (1.0 - alpha) - high ** (1.0 - alpha))
            / (1.0 - ratio)
        )

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        ratio = (self.lower / self.upper) ** self.alpha
        return self.lower * (1.0 - u * (1.0 - ratio)) ** (-1.0 / self.alpha)


@dataclass(frozen=True)
class BimodalSizes(SizeModel):
    """Mice/elephants mixture: two exponentials, explicit weights.

    With probability ``large_fraction`` a job is an elephant (mean
    ``large_mean``), otherwise a mouse (mean ``small_mean``).  A small
    ``large_fraction`` with a large mean ratio reproduces the common
    trace shape where a few percent of jobs carry most of the work.
    """

    small_mean: float = 0.5
    large_mean: float = 10.0
    large_fraction: float = 0.05
    kind = "bimodal"

    def __post_init__(self) -> None:
        if self.small_mean <= 0.0 or self.large_mean <= 0.0:
            raise SimulationError("both modal means must be positive")
        if not 0.0 <= self.large_fraction <= 1.0:
            raise SimulationError(
                f"large_fraction must be in [0, 1], got {self.large_fraction}"
            )

    @property
    def mean(self) -> float:
        return (
            (1.0 - self.large_fraction) * self.small_mean
            + self.large_fraction * self.large_mean
        )

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.large_fraction:
            return rng.expovariate(1.0 / self.large_mean)
        return rng.expovariate(1.0 / self.small_mean)


_MODELS: dict[str, type[SizeModel]] = {
    "exponential": ExponentialSizes,
    "fixed": FixedSizes,
    "bounded_pareto": BoundedParetoSizes,
    "bimodal": BimodalSizes,
}


def make_size_model(spec: SizeModel | dict[str, object] | None) -> SizeModel:
    """Build a :class:`SizeModel` from a spec dict (or pass one through).

    ``None`` means the default unit-mean exponential law.  The spec
    format is exactly what :meth:`SizeModel.spec` emits:
    ``{"kind": "bounded_pareto", "alpha": 1.5, ...}``.
    """
    if spec is None:
        return ExponentialSizes()
    if isinstance(spec, SizeModel):
        return spec
    payload = dict(spec)
    kind = payload.pop("kind", None)
    if kind not in _MODELS:
        raise SimulationError(
            f"unknown size model {kind!r}; choose one of {sorted(_MODELS)}"
        )
    try:
        return _MODELS[kind](**payload)  # type: ignore[arg-type]
    except TypeError as exc:
        raise SimulationError(
            f"bad {kind!r} size-model spec {payload!r}: {exc}"
        ) from exc
