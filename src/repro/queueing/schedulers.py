"""The four Section-VI schedulers: FCFS, MAXIT, SRPT, MAXTP.

All schedulers implement :class:`Scheduler`: given the jobs currently in
the system, pick the set to run until the next event.  The engine
re-invokes the scheduler at every arrival and completion, which is the
paper's "select coschedules from the jobs currently in the system".

Knowledge requirements mirror the paper:

* FCFS needs nothing;
* MAXIT needs the instantaneous throughput of every coschedule;
* SRPT additionally needs each job's remaining size;
* MAXTP needs an offline LP solve (the Section-IV optimal fractions)
  and then only the *types* of the jobs present.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Iterable, Sequence

from repro.errors import SimulationError, WorkloadError
from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.microarch.rates import RateSource
from repro.queueing.job import Job
from repro.util.multiset import sub_multisets

__all__ = [
    "Scheduler",
    "FcfsScheduler",
    "MaxItScheduler",
    "SrptScheduler",
    "MaxTpScheduler",
    "LongJobFirstScheduler",
    "RandomScheduler",
    "make_scheduler",
]


def _age_key(job: Job) -> tuple[float, int]:
    """Sort key: older jobs (earlier arrival, lower id) first."""
    return (job.arrival_time, job.job_id)


def _jobs_by_type(jobs: Iterable[Job]) -> dict[str, list[Job]]:
    by_type: dict[str, list[Job]] = {}
    for job in jobs:
        by_type.setdefault(job.job_type, []).append(job)
    return by_type


def _candidate_multisets(
    jobs: Sequence[Job], size: int
) -> list[tuple[str, ...]]:
    """Distinct type-multisets of ``size`` constructible from ``jobs``."""
    present = tuple(sorted(job.job_type for job in jobs))
    return sorted(set(sub_multisets(present, size)))


class Scheduler(ABC):
    """Base class: picks the running set at every scheduling event."""

    name: str = "base"

    def __init__(self, rates: RateSource, contexts: int) -> None:
        if contexts <= 0:
            raise SimulationError(f"contexts must be positive, got {contexts}")
        self.rates = rates
        self.contexts = contexts

    @abstractmethod
    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        """Choose which of ``jobs`` to run until the next event."""

    def observe(self, coschedule: tuple[str, ...], dt: float) -> None:
        """Hook: the engine reports how long each coschedule ran."""

    def bind_rates(self, rates: RateSource) -> None:
        """Swap the rate source used for probing.

        The event core hoists a shared per-run memo over the run's rate
        source and rebinds every scheduler to it, so candidate-multiset
        evaluation (MAXIT/SRPT probe many coschedules per decision) and
        engine stepping hit one memo; the original source is restored
        when the run ends.  Subclasses holding extra rate-consuming
        helpers must propagate the rebind.
        """
        self.rates = rates

    def _pick_oldest(
        self, jobs: Sequence[Job], multiset: tuple[str, ...]
    ) -> list[Job]:
        """Instantiate a type-multiset with the oldest matching jobs."""
        by_type = _jobs_by_type(jobs)
        chosen: list[Job] = []
        for job_type, count in Counter(multiset).items():
            pool = sorted(by_type[job_type], key=_age_key)
            chosen.extend(pool[:count])
        return chosen


class FcfsScheduler(Scheduler):
    """Run jobs strictly in arrival order (work-conserving).

    Because the engine only reschedules at events and new arrivals are
    always younger than running jobs, this behaves exactly like a
    non-preemptive first-come first-served queue.
    """

    name = "fcfs"

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        ordered = sorted(jobs, key=_age_key)
        return ordered[: self.contexts]


class MaxItScheduler(Scheduler):
    """Greedily maximize instantaneous throughput.

    Among all coschedules formable from the present jobs (of size
    min(K, jobs present)), pick the one with the highest ``it(s)``;
    ties go to the combination containing the oldest jobs.
    """

    name = "maxit"

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        if not jobs:
            return []
        size = min(self.contexts, len(jobs))
        best: list[Job] | None = None
        best_key: tuple[float, float] | None = None
        for multiset in _candidate_multisets(jobs, size):
            it = sum(self.rates.type_rates(multiset).values())
            chosen = self._pick_oldest(jobs, multiset)
            age = sum(job.arrival_time for job in chosen)
            key = (-it, age)
            if best_key is None or key < best_key:
                best_key = key
                best = chosen
        assert best is not None
        return best


class SrptScheduler(Scheduler):
    """Shortest-remaining-processing-time, symbiosis-aware.

    For every candidate coschedule the remaining *execution* time of a
    job is its remaining work divided by its rate in that coschedule;
    the scheduler picks the combination minimizing the sum.  Within a
    type the shortest-remaining jobs are chosen (they minimize the sum
    for any multiset, since same-type jobs share a rate).
    """

    name = "srpt"

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        if not jobs:
            return []
        size = min(self.contexts, len(jobs))
        by_type = _jobs_by_type(jobs)
        for pool in by_type.values():
            pool.sort(key=lambda job: (job.remaining, job.job_id))
        best: list[Job] | None = None
        best_key: tuple[float, float] | None = None
        for multiset in _candidate_multisets(jobs, size):
            type_rates = self.rates.type_rates(multiset)
            counts = Counter(multiset)
            chosen: list[Job] = []
            total_remaining = 0.0
            feasible = True
            for job_type, count in counts.items():
                rate = type_rates.get(job_type, 0.0) / count
                if rate <= 0.0:
                    feasible = False
                    break
                picks = by_type[job_type][:count]
                chosen.extend(picks)
                total_remaining += sum(j.remaining for j in picks) / rate
            if not feasible:
                continue
            age = sum(job.arrival_time for job in chosen)
            key = (total_remaining, age)
            if best_key is None or key < best_key:
                best_key = key
                best = chosen
        if best is None:
            raise SimulationError("no feasible coschedule (zero rates?)")
        return best


class MaxTpScheduler(Scheduler):
    """Follow the LP-optimal coschedule fractions (the paper's MAXTP).

    Offline phase: solve the Section-IV LP for the workload, obtaining
    the optimal coschedules and their ideal time fractions.  Online: if
    one or more optimal coschedules can be composed from the jobs in
    the system, select the one furthest *behind* its ideal fraction
    (tracked via :meth:`observe`); otherwise fall back to MAXIT.
    """

    name = "maxtp"

    def __init__(
        self,
        rates: RateSource,
        contexts: int,
        workload: Workload,
        *,
        backend: str = "simplex",
    ) -> None:
        super().__init__(rates, contexts)
        self.workload = workload
        schedule = optimal_throughput(
            rates, workload, contexts=contexts, backend=backend
        )
        self.target_fractions: dict[tuple[str, ...], float] = dict(
            schedule.fractions
        )
        self.time_in: dict[tuple[str, ...], float] = {
            s: 0.0 for s in self.target_fractions
        }
        self.total_time = 0.0
        self._fallback = MaxItScheduler(rates, contexts)

    def observe(self, coschedule: tuple[str, ...], dt: float) -> None:
        """Track elapsed time globally and per optimal coschedule."""
        self.total_time += dt
        if coschedule in self.time_in:
            self.time_in[coschedule] += dt

    def bind_rates(self, rates: RateSource) -> None:
        """Rebind both this scheduler and its MAXIT fallback."""
        super().bind_rates(rates)
        self._fallback.bind_rates(rates)

    def _deficit(self, coschedule: tuple[str, ...]) -> float:
        target = self.target_fractions[coschedule]
        if self.total_time == 0.0:
            return target
        return target - self.time_in[coschedule] / self.total_time

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        if not jobs:
            return []
        if len(jobs) >= self.contexts:
            counts = Counter(job.job_type for job in jobs)
            candidates = [
                s
                for s in self.target_fractions
                if all(counts[t] >= c for t, c in Counter(s).items())
            ]
            if candidates:
                chosen = max(
                    candidates,
                    key=lambda s: (self._deficit(s), self.target_fractions[s], s),
                )
                return self._pick_oldest(jobs, chosen)
        return self._fallback.select(jobs, clock)


class LongJobFirstScheduler(Scheduler):
    """Run the jobs with the most remaining work first.

    The symbiosis-*unaware* heuristic that Xu et al. (PACT 2010) found
    to beat their symbiosis-aware scheduler on small fixed job sets
    (the paper discusses this in Section II): with few jobs, finishing
    long jobs early avoids draining the machine with idle contexts at
    the end, which matters more than symbiosis.
    """

    name = "ljf"

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        ordered = sorted(
            jobs, key=lambda job: (-job.remaining, job.job_id)
        )
        return ordered[: self.contexts]


class RandomScheduler(Scheduler):
    """Select a uniformly random set of queued jobs (a control policy).

    Deterministic given the seed; used in tests and ablations as a
    symbiosis-blind alternative to FCFS with no age bias.
    """

    name = "random"

    def __init__(self, rates: RateSource, contexts: int, *, seed: int = 0):
        super().__init__(rates, contexts)
        from repro.util.rng import make_rng

        self._rng = make_rng(seed)

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        if len(jobs) <= self.contexts:
            return list(jobs)
        return self._rng.sample(list(jobs), self.contexts)


def make_scheduler(
    name: str,
    rates: RateSource,
    contexts: int,
    *,
    workload: Workload | None = None,
    seed: int = 0,
) -> Scheduler:
    """Factory: build a scheduler by name.

    ``workload`` is required for "maxtp" (its offline LP phase);
    ``seed`` only affects "random".
    """
    key = name.lower()
    if key == "fcfs":
        return FcfsScheduler(rates, contexts)
    if key == "maxit":
        return MaxItScheduler(rates, contexts)
    if key == "srpt":
        return SrptScheduler(rates, contexts)
    if key == "ljf":
        return LongJobFirstScheduler(rates, contexts)
    if key == "random":
        return RandomScheduler(rates, contexts, seed=seed)
    if key == "maxtp":
        if workload is None:
            raise WorkloadError("MAXTP needs the workload for its offline phase")
        return MaxTpScheduler(rates, contexts, workload)
    raise WorkloadError(
        f"unknown scheduler {name!r}; choose fcfs, maxit, srpt, ljf, "
        "random, or maxtp"
    )
