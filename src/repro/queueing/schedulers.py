"""The four Section-VI schedulers: FCFS, MAXIT, SRPT, MAXTP.

All schedulers implement :class:`Scheduler`: given the jobs currently in
the system, pick the set to run until the next event.  The engine
re-invokes the scheduler at every arrival and completion, which is the
paper's "select coschedules from the jobs currently in the system".

Knowledge requirements mirror the paper:

* FCFS needs nothing;
* MAXIT needs the instantaneous throughput of every coschedule;
* SRPT additionally needs each job's remaining size;
* MAXTP needs an offline LP solve (the Section-IV optimal fractions)
  and then only the *types* of the jobs present.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from heapq import nsmallest
from typing import Callable, Iterable, Sequence

from repro.errors import SimulationError, WorkloadError
from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.microarch.codec import TypeCodec
from repro.microarch.rates import RateSource
from repro.queueing.job import Job
from repro.queueing.ratememo import RunRateMemo
from repro.util.multiset import sub_multisets

__all__ = [
    "Scheduler",
    "FcfsScheduler",
    "MaxItScheduler",
    "SrptScheduler",
    "MaxTpScheduler",
    "LongJobFirstScheduler",
    "RandomScheduler",
    "make_scheduler",
]


def _age_key(job: Job) -> tuple[float, int]:
    """Sort key: older jobs (earlier arrival, lower id) first."""
    return (job.arrival_time, job.job_id)


def _jobs_by_type(jobs: Iterable[Job]) -> dict[str, list[Job]]:
    by_type: dict[str, list[Job]] = {}
    for job in jobs:
        by_type.setdefault(job.job_type, []).append(job)
    return by_type


def _candidate_multisets(
    jobs: Sequence[Job], size: int
) -> list[tuple[str, ...]]:
    """Distinct type-multisets of ``size`` constructible from ``jobs``."""
    present = tuple(sorted(job.job_type for job in jobs))
    return sorted(set(sub_multisets(present, size)))


def _jobs_by_code(
    jobs: Sequence[Job], codec: TypeCodec
) -> dict[int, list[Job]]:
    """Group jobs by interned type id.

    Inside a cluster run the machine's
    :class:`~repro.queueing.cluster.JobQueue` maintains this index
    incrementally (:func:`_code_index` finds it attached to the
    sequence), so this full pass runs only when that index is absent
    or belongs to a different codec — a scheduler probed standalone,
    or one probing its own counterfactual memo inside someone else's
    run.  The grouping is purely local: it never writes
    ``job.type_code`` (that field is owned by the event loop's codec,
    and a scheduler probing a *different* memo must not clobber it).
    """
    by_code: dict[int, list[Job]] = {}
    for job in jobs:
        code = codec.encode(job.job_type)
        pool = by_code.get(code)
        if pool is None:
            by_code[code] = [job]
        else:
            pool.append(job)
    return by_code


def _counts_key(
    by_code: dict[int, list[Job]]
) -> tuple[tuple[int, int], ...]:
    """The probe-memo key of a queue state: per-type-code counts,
    sorted by id.  Empty pools (a type whose jobs all completed) are
    skipped — they must not distinguish otherwise-equal states."""
    return tuple(
        sorted((code, len(pool)) for code, pool in by_code.items() if pool)
    )


def _accumulate_age(
    candidate, pool_jobs: Callable[[int], list[Job]]
) -> float:
    """Sum of ``arrival_time`` over the jobs a candidate would pick,
    accumulated in exactly the legacy ``chosen`` order (count_items
    order, oldest/shortest-first within a pool) so float ties break
    identically on both paths."""
    age = 0.0
    for code, count in candidate.count_items:
        for job in pool_jobs(code)[:count]:
            age += job.arrival_time
    return age


def _code_index(
    jobs: Sequence[Job], codec: TypeCodec
) -> dict[int, list[Job]]:
    """The per-type-code index of ``jobs``: the queue's incremental
    one when it was built by *this* codec, a freshly built one
    otherwise (the queue's ids are the run codec's — a scheduler
    probing its own counterfactual memo must not decode them with an
    unrelated codec).  Pools may be empty (a type whose jobs all
    completed) — consumers skip those."""
    if getattr(jobs, "index_codec", None) is codec:
        index = jobs.by_code
        if index is not None:
            return index
    return _jobs_by_code(jobs, codec)


def _pool_cache(
    by_code: dict[int, list[Job]], key: Callable[[Job], object]
) -> Callable[[int], list[Job]]:
    """Lazily sorted per-type pools for one probe.

    MAXIT's ``(-it, age)`` key is lexicographic, so only the handful
    of candidates tied on the maximal throughput ever need their jobs
    ordered — sorting pools on demand skips the rest entirely.
    """
    pools: dict[int, list[Job]] = {}

    def pool(code: int) -> list[Job]:
        cached = pools.get(code)
        if cached is None:
            cached = sorted(by_code[code], key=key)
            pools[code] = cached
        return cached

    return pool


class Scheduler(ABC):
    """Base class: picks the running set at every scheduling event."""

    name: str = "base"

    def __init__(self, rates: RateSource, contexts: int) -> None:
        if contexts <= 0:
            raise SimulationError(f"contexts must be positive, got {contexts}")
        self.rates = rates
        self.contexts = contexts

    @abstractmethod
    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        """Choose which of ``jobs`` to run until the next event."""

    def observe(self, coschedule: tuple[str, ...], dt: float) -> None:
        """Hook: the engine reports how long each coschedule ran."""

    def state_dict(self) -> dict[str, object]:
        """JSON-safe mutable run state (checkpointing).

        Stateless policies return ``{}``; policies whose decisions
        depend on run history (MAXTP's time accounting, RANDOM's RNG)
        override both hooks so a checkpoint-restored run replays the
        exact pick sequence of the uninterrupted one.
        """
        return {}

    def load_state(self, state: dict[str, object]) -> None:
        """Restore mutable state captured by :meth:`state_dict`."""

    def bind_rates(self, rates: RateSource) -> None:
        """Swap the rate source used for probing.

        The event core hoists a shared per-run memo over the run's rate
        source and rebinds every scheduler to it, so candidate-multiset
        evaluation (MAXIT/SRPT probe many coschedules per decision) and
        engine stepping hit one memo; the original source is restored
        when the run ends.  Subclasses holding extra rate-consuming
        helpers must propagate the rebind.
        """
        self.rates = rates

    def reoptimize(self, rates: RateSource) -> None:
        """Hook: refresh any offline-solved policy state from ``rates``.

        Fired by the estimation layer at every re-optimization round
        (and once at run start / run end with the estimated / true
        source respectively).  Policies without an offline phase —
        FCFS, MAXIT, SRPT probe their bound source live — have nothing
        to refresh; MAXTP re-solves its LP.
        """

    def _run_memo(self) -> RunRateMemo | None:
        """The bound compiled run memo, if probing should take the
        interned-type fast path (``None`` → legacy string probing:
        a scheduler deliberately probing a counterfactual table, or a
        run with ``fast_path=False``)."""
        rates = self.rates
        if isinstance(rates, RunRateMemo) and rates.compiled:
            return rates
        return None

    def _pick_oldest(
        self, jobs: Sequence[Job], multiset: tuple[str, ...]
    ) -> list[Job]:
        """Instantiate a type-multiset with the oldest matching jobs."""
        by_type = _jobs_by_type(jobs)
        chosen: list[Job] = []
        for job_type, count in Counter(multiset).items():
            pool = sorted(by_type[job_type], key=_age_key)
            chosen.extend(pool[:count])
        return chosen


class FcfsScheduler(Scheduler):
    """Run jobs strictly in arrival order (work-conserving).

    Because the engine only reschedules at events and new arrivals are
    always younger than running jobs, this behaves exactly like a
    non-preemptive first-come first-served queue.
    """

    name = "fcfs"

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        ordered = sorted(jobs, key=_age_key)
        return ordered[: self.contexts]


class MaxItScheduler(Scheduler):
    """Greedily maximize instantaneous throughput.

    Among all coschedules formable from the present jobs (of size
    min(K, jobs present)), pick the one with the highest ``it(s)``;
    ties go to the combination containing the oldest jobs.
    """

    name = "maxit"

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        if not jobs:
            return []
        memo = self._run_memo()
        if memo is not None:
            return self._select_coded(memo, jobs)
        size = min(self.contexts, len(jobs))
        best: list[Job] | None = None
        best_key: tuple[float, float] | None = None
        for multiset in _candidate_multisets(jobs, size):
            it = sum(self.rates.type_rates(multiset).values())
            chosen = self._pick_oldest(jobs, multiset)
            age = sum(job.arrival_time for job in chosen)
            key = (-it, age)
            if best_key is None or key < best_key:
                best_key = key
                best = chosen
        assert best is not None
        return best

    def _select_coded(
        self, memo: RunRateMemo, jobs: Sequence[Job]
    ) -> list[Job]:
        """Interned-type probe, pinned pick-identical to the string
        path by ``tests/property/test_fastpath_equivalence.py``.

        The legacy key ``(-it, age)`` is lexicographic and ``it``
        depends only on the multiset, so the memoized candidate set's
        ``max_it_group`` (legacy enumeration order preserved) is the
        only slice that ever needs ages — usually a single candidate,
        which needs no age at all.  When ages are needed they
        accumulate ``arrival_time`` in exactly the legacy ``chosen``
        order, so float ties break the same way.
        """
        by_code = _code_index(jobs, memo.codec)
        size = min(self.contexts, len(jobs))
        probe = memo.probe_candidates(_counts_key(by_code), size)
        pool = _pool_cache(by_code, _age_key)
        group = probe.max_it_group
        if len(group) == 1:
            best = group[0]
        else:
            best = None
            best_age: float | None = None
            for candidate in group:
                age = _accumulate_age(candidate, pool)
                if best_age is None or age < best_age:
                    best_age = age
                    best = candidate
            assert best is not None
        chosen: list[Job] = []
        for code, count in best.count_items:
            chosen.extend(pool(code)[:count])
        return chosen


class SrptScheduler(Scheduler):
    """Shortest-remaining-processing-time, symbiosis-aware.

    For every candidate coschedule the remaining *execution* time of a
    job is its remaining work divided by its rate in that coschedule;
    the scheduler picks the combination minimizing the sum.  Within a
    type the shortest-remaining jobs are chosen (they minimize the sum
    for any multiset, since same-type jobs share a rate).
    """

    name = "srpt"

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        if not jobs:
            return []
        memo = self._run_memo()
        if memo is not None:
            return self._select_coded(memo, jobs)
        size = min(self.contexts, len(jobs))
        by_type = _jobs_by_type(jobs)
        for pool in by_type.values():
            pool.sort(key=lambda job: (job.remaining, job.job_id))
        best: list[Job] | None = None
        best_key: tuple[float, float] | None = None
        for multiset in _candidate_multisets(jobs, size):
            type_rates = self.rates.type_rates(multiset)
            counts = Counter(multiset)
            chosen: list[Job] = []
            total_remaining = 0.0
            feasible = True
            for job_type, count in counts.items():
                rate = type_rates.get(job_type, 0.0) / count
                if rate <= 0.0:
                    feasible = False
                    break
                picks = by_type[job_type][:count]
                chosen.extend(picks)
                total_remaining += sum(j.remaining for j in picks) / rate
            if not feasible:
                continue
            age = sum(job.arrival_time for job in chosen)
            key = (total_remaining, age)
            if best_key is None or key < best_key:
                best_key = key
                best = chosen
        if best is None:
            raise SimulationError("no feasible coschedule (zero rates?)")
        return best

    def _select_coded(
        self, memo: RunRateMemo, jobs: Sequence[Job]
    ) -> list[Job]:
        """Interned-type probe, pick-identical to the string path.

        Candidates with a zero-rate type are infeasible for *every*
        queue state (rates depend only on the multiset), so the
        memoized candidate set prunes them once.  Per-pool prefix sums
        replace the per-candidate slices: a running accumulator
        performs the exact float additions of the legacy
        ``sum(pool[:count])``, so every ``total_remaining`` is
        bit-identical — and the legacy key ``(total_remaining, age)``
        is lexicographic, so ages are computed only on exact
        ``total_remaining`` ties.
        """
        by_code = _code_index(jobs, memo.codec)
        size = min(self.contexts, len(jobs))
        probe = memo.probe_candidates(_counts_key(by_code), size)
        # pools[code] = (jobs sorted shortest-remaining-first,
        #                prefix sums of their remaining work)
        pools: dict[int, tuple[list[Job], list[float]]] = {}

        def pool(code: int) -> tuple[list[Job], list[float]]:
            entry = pools.get(code)
            if entry is None:
                ordered = sorted(
                    by_code[code],
                    key=lambda job: (job.remaining, job.job_id),
                )
                prefix = [0.0]
                acc = 0.0
                for job in ordered:
                    acc += job.remaining
                    prefix.append(acc)
                entry = (ordered, prefix)
                pools[code] = entry
            return entry

        def age_of(candidate) -> float:
            return _accumulate_age(candidate, lambda code: pool(code)[0])

        best = None
        best_total: float | None = None
        best_age: float | None = None
        for candidate in probe.feasible:
            total_remaining = 0.0
            for code, count, rate in candidate.srpt_items:
                total_remaining += pool(code)[1][count] / rate
            if best_total is None or total_remaining < best_total:
                best = candidate
                best_total = total_remaining
                best_age = None
            elif total_remaining == best_total:
                if best_age is None:
                    best_age = age_of(best)
                age = age_of(candidate)
                if age < best_age:
                    best = candidate
                    best_age = age
        if best is None:
            raise SimulationError("no feasible coschedule (zero rates?)")
        chosen: list[Job] = []
        for code, count in best.count_items:
            chosen.extend(pool(code)[0][:count])
        return chosen


class MaxTpScheduler(Scheduler):
    """Follow the LP-optimal coschedule fractions (the paper's MAXTP).

    Offline phase: solve the Section-IV LP for the workload, obtaining
    the optimal coschedules and their ideal time fractions.  Online: if
    one or more optimal coschedules can be composed from the jobs in
    the system, select the one furthest *behind* its ideal fraction
    (tracked via :meth:`observe`); otherwise fall back to MAXIT.
    """

    name = "maxtp"

    def __init__(
        self,
        rates: RateSource,
        contexts: int,
        workload: Workload,
        *,
        backend: str = "simplex",
    ) -> None:
        super().__init__(rates, contexts)
        self.workload = workload
        self._backend = backend
        schedule = optimal_throughput(
            rates, workload, contexts=contexts, backend=backend
        )
        self.target_fractions: dict[tuple[str, ...], float] = dict(
            schedule.fractions
        )
        self.time_in: dict[tuple[str, ...], float] = {
            s: 0.0 for s in self.target_fractions
        }
        self.total_time = 0.0
        self._fallback = MaxItScheduler(rates, contexts)
        # Per-run coded view of the optimal coschedules: (codec, list
        # of (names, ((type_id, count), ...))).  Rebuilt whenever the
        # bound run memo's codec changes (i.e. once per run).
        self._coded_targets: tuple[
            TypeCodec, list[tuple[tuple[str, ...], tuple[tuple[int, int], ...]]]
        ] | None = None

    def observe(self, coschedule: tuple[str, ...], dt: float) -> None:
        """Track elapsed time globally and per optimal coschedule."""
        self.total_time += dt
        if coschedule in self.time_in:
            self.time_in[coschedule] += dt

    def state_dict(self) -> dict[str, object]:
        """The deficit accounting (floats round-trip JSON exactly)."""
        return {
            "total_time": self.total_time,
            "time_in": [
                [list(s), t] for s, t in self.time_in.items()
            ],
        }

    def load_state(self, state: dict[str, object]) -> None:
        self.total_time = float(state["total_time"])
        restored = {tuple(s): float(t) for s, t in state["time_in"]}
        if set(restored) != set(self.time_in):
            raise SimulationError(
                "MAXTP checkpoint targets do not match this workload's "
                "LP coschedules"
            )
        self.time_in = restored

    def bind_rates(self, rates: RateSource) -> None:
        """Rebind both this scheduler and its MAXIT fallback."""
        super().bind_rates(rates)
        self._fallback.bind_rates(rates)

    def reoptimize(self, rates: RateSource) -> None:
        """Re-solve the offline LP against ``rates`` (the estimation
        layer's re-optimization round), keeping the run's deficit
        accounting for targets that survive the re-solve.

        With bit-identical inputs (zero-noise estimates warm-started
        at the truth) the solve is deterministic, so the refreshed
        fractions — and every subsequent deficit — are unchanged.
        """
        schedule = optimal_throughput(
            rates,
            self.workload,
            contexts=self.contexts,
            backend=self._backend,
        )
        fractions = dict(schedule.fractions)
        self.time_in = {s: self.time_in.get(s, 0.0) for s in fractions}
        self.target_fractions = fractions
        self._coded_targets = None

    def _deficit(self, coschedule: tuple[str, ...]) -> float:
        target = self.target_fractions[coschedule]
        if self.total_time == 0.0:
            return target
        return target - self.time_in[coschedule] / self.total_time

    def _select_coded(
        self, memo: RunRateMemo, jobs: Sequence[Job]
    ) -> list[Job] | None:
        """Interned-type twin of the string select (``None`` → fall
        back to MAXIT, exactly when the string path would).

        Same formable targets in the same ``target_fractions`` order,
        the same deficit tie-break, and the same oldest-jobs
        instantiation (``nsmallest(count, pool, key)`` is
        ``sorted(pool, key)[:count]``, job keys are unique) — only the
        containment arithmetic runs on interned ids and the queue's
        per-type-code counts instead of string Counters over every
        job.
        """
        codec = memo.codec
        cached = self._coded_targets
        if cached is None or cached[0] is not codec:
            coded = [
                (
                    s,
                    tuple(
                        (codec.encode(t), c) for t, c in Counter(s).items()
                    ),
                )
                for s in self.target_fractions
            ]
            self._coded_targets = cached = (codec, coded)
        by_code = _code_index(jobs, codec)
        counts = {
            code: len(pool) for code, pool in by_code.items() if pool
        }
        get = counts.get
        formable = [
            (s, items)
            for s, items in cached[1]
            if all(get(code, 0) >= count for code, count in items)
        ]
        if not formable:
            return None
        _, best_items = max(
            formable,
            key=lambda pair: (
                self._deficit(pair[0]),
                self.target_fractions[pair[0]],
                pair[0],
            ),
        )
        chosen: list[Job] = []
        for code, count in best_items:
            chosen.extend(nsmallest(count, by_code[code], key=_age_key))
        return chosen

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        if not jobs:
            return []
        if len(jobs) >= self.contexts:
            memo = self._run_memo()
            if memo is not None:
                chosen = self._select_coded(memo, jobs)
                if chosen is not None:
                    return chosen
                return self._fallback.select(jobs, clock)
            counts = Counter(job.job_type for job in jobs)
            candidates = [
                s
                for s in self.target_fractions
                if all(counts[t] >= c for t, c in Counter(s).items())
            ]
            if candidates:
                chosen = max(
                    candidates,
                    key=lambda s: (self._deficit(s), self.target_fractions[s], s),
                )
                return self._pick_oldest(jobs, chosen)
        return self._fallback.select(jobs, clock)


class LongJobFirstScheduler(Scheduler):
    """Run the jobs with the most remaining work first.

    The symbiosis-*unaware* heuristic that Xu et al. (PACT 2010) found
    to beat their symbiosis-aware scheduler on small fixed job sets
    (the paper discusses this in Section II): with few jobs, finishing
    long jobs early avoids draining the machine with idle contexts at
    the end, which matters more than symbiosis.
    """

    name = "ljf"

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        ordered = sorted(
            jobs, key=lambda job: (-job.remaining, job.job_id)
        )
        return ordered[: self.contexts]


class RandomScheduler(Scheduler):
    """Select a uniformly random set of queued jobs (a control policy).

    Deterministic given the seed; used in tests and ablations as a
    symbiosis-blind alternative to FCFS with no age bias.
    """

    name = "random"

    def __init__(self, rates: RateSource, contexts: int, *, seed: int = 0):
        super().__init__(rates, contexts)
        from repro.util.rng import make_rng

        self._rng = make_rng(seed)

    def select(self, jobs: Sequence[Job], clock: float) -> list[Job]:
        if len(jobs) <= self.contexts:
            return list(jobs)
        return self._rng.sample(list(jobs), self.contexts)

    def state_dict(self) -> dict[str, object]:
        """The Mersenne-Twister state (ints; JSON-exact)."""
        version, internal, gauss = self._rng.getstate()
        return {"rng": [version, list(internal), gauss]}

    def load_state(self, state: dict[str, object]) -> None:
        version, internal, gauss = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss))


def make_scheduler(
    name: str,
    rates: RateSource,
    contexts: int,
    *,
    workload: Workload | None = None,
    seed: int = 0,
) -> Scheduler:
    """Factory: build a scheduler by name.

    ``workload`` is required for "maxtp" (its offline LP phase);
    ``seed`` only affects "random".
    """
    key = name.lower()
    if key == "fcfs":
        return FcfsScheduler(rates, contexts)
    if key == "maxit":
        return MaxItScheduler(rates, contexts)
    if key == "srpt":
        return SrptScheduler(rates, contexts)
    if key == "ljf":
        return LongJobFirstScheduler(rates, contexts)
    if key == "random":
        return RandomScheduler(rates, contexts, seed=seed)
    if key == "maxtp":
        if workload is None:
            raise WorkloadError("MAXTP needs the workload for its offline phase")
        return MaxTpScheduler(rates, contexts, workload)
    raise WorkloadError(
        f"unknown scheduler {name!r}; choose fcfs, maxit, srpt, ljf, "
        "random, or maxtp"
    )
