"""Hot-path benchmark workloads and the perf-trajectory format.

The ROADMAP's north star is a simulator that runs as fast as the
hardware allows, which needs two things the repo previously lacked: a
*fixed, synthetic-rate* workload pair that times the event core in
isolation (no microarch simulation, no LP noise beyond the offline
solves), and a committed record of how fast it runs so later PRs
cannot silently regress it.  This module is the single source of truth
for both:

* :func:`synthetic_rates` — a deterministic rate table over N job
  types with real symbiosis structure (mixed coschedules beat
  homogeneous ones at equal load), sized so MAXIT/SRPT probing sees a
  realistically wide candidate space;
* :func:`saturated_cluster` — the **saturated MAXIT/SRPT cluster**
  workload: a backlog-capped, saturated multi-machine run where every
  event triggers a full candidate probe (the paper's Section-VI
  saturation setting, scaled up); the ``_wide`` variant deepens the
  backlog and widens the machines (6 contexts, 40 queued jobs) so the
  candidate space is large enough for the compiled engine's count-
  vector probing to show its full separation — it is the headline
  workload for perf-trajectory point 1;
* :func:`scenario_run` — the **scenario-sweep** workload: bursty MMPP
  traffic through MAXTP machines behind the LP-affinity dispatcher,
  exercising long non-saturated queues and the dispatch layer;
* :func:`measure` — best-of-N wall-clock of one workload on any of
  the three engines (``legacy``, ``fast``, ``compiled`` — the axes of
  ``tools/profile_hotpaths.py`` and ``BENCH_CORE.json``).

``benchmarks/bench_hotpath.py`` wraps these in pytest-benchmark and
checks the committed ``BENCH_CORE.json`` trajectory; CI's perf-smoke
job compares fresh numbers against that baseline with a generous
tolerance (hardware varies — only a wholesale regression fails).
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.core.workload import Workload
from repro.microarch.rates import TableRates
from repro.queueing.cluster import Cluster, ClusterMetrics
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.job import Job
from repro.queueing.scenarios import get_scenario
from repro.queueing.schedulers import make_scheduler
from repro.util.multiset import multisets
from repro.util.rng import make_rng

__all__ = [
    "synthetic_rates",
    "saturated_jobs",
    "saturated_cluster",
    "scenario_run",
    "measure",
    "HOTPATH_WORKLOADS",
]


def synthetic_rates(
    n_types: int = 5, contexts: int = 4, seed: int = 7
) -> tuple[TableRates, tuple[str, ...]]:
    """A deterministic full rate table over ``n_types`` job types.

    Per-type base rates are seeded-random in [0.6, 1.0); coschedules
    gain throughput with size (SMT-style overlap) and lose a little
    with heterogeneity, so schedulers face real trade-offs.  All
    multisets of sizes 1..contexts are present.
    """
    names = tuple(chr(ord("A") + i) for i in range(n_types))
    rng = make_rng(seed)
    base = {t: 0.6 + 0.4 * rng.random() for t in names}
    table = {}
    for size in range(1, contexts + 1):
        for combo in multisets(names, size):
            distinct = len(set(combo))
            factor = 1.0 + 0.35 * (size - 1) - 0.08 * (distinct - 1)
            table[combo] = {
                t: base[t] * combo.count(t) * factor / size
                for t in set(combo)
            }
    return TableRates(table), names


def saturated_jobs(
    types: Sequence[str], n_jobs: int, *, seed: int = 0
) -> list[Job]:
    """A time-zero backlog with balanced types and varied sizes."""
    rng = make_rng(seed)
    pool = [types[i % len(types)] for i in range(n_jobs)]
    rng.shuffle(pool)
    return [
        Job(
            job_id=i,
            job_type=t,
            size=0.5 + rng.random(),
            arrival_time=0.0,
        )
        for i, t in enumerate(pool)
    ]


def _run_stats(cluster: Cluster) -> dict[str, object] | None:
    """Memo stats of the last run, with the compiled engine's own
    counters (fusion, batching, vectorization) nested under
    ``"engine"`` when that engine ran."""
    stats = cluster.last_memo_stats
    if cluster.last_engine_stats is not None:
        stats = dict(stats or {})
        stats["engine"] = cluster.last_engine_stats
    return stats


def saturated_cluster(
    scheduler: str = "maxit",
    *,
    n_jobs: int = 4000,
    n_machines: int = 3,
    contexts: int = 4,
    backlog: int = 10,
    fast_path: bool = True,
    engine: str | None = None,
    backend: str | None = None,
) -> tuple[ClusterMetrics, dict[str, object] | None]:
    """The saturated probing workload (every event probes candidates).

    Returns the run's metrics and the memo's hit/miss stats dict.
    """
    rates, names = synthetic_rates(contexts=contexts)
    workload = Workload.of(*names)
    cluster = Cluster(
        rates,
        [
            make_scheduler(scheduler, rates, contexts, workload=workload)
            for _ in range(n_machines)
        ],
        make_dispatcher("round_robin"),
    )
    metrics = cluster.run(
        saturated_jobs(names, n_jobs),
        stop_when_fewer_than=n_machines * contexts,
        keep_in_system=backlog,
        fast_path=fast_path,
        engine=engine,
        backend=backend,
    )
    return metrics, _run_stats(cluster)


def scenario_run(
    *,
    n_jobs: int = 3000,
    n_machines: int = 2,
    contexts: int = 4,
    scenario: str = "bursty_mmpp",
    mean_rate: float = 6.0,
    fast_path: bool = True,
    engine: str | None = None,
    backend: str | None = None,
) -> tuple[ClusterMetrics, dict[str, object] | None]:
    """The scenario-sweep workload: bursty MAXTP + affinity dispatch.

    Non-saturated but heavily backlogged during bursts, so the
    per-type queue index and the coded MAXTP containment check carry
    the load.
    """
    rates, names = synthetic_rates(contexts=contexts)
    workload = Workload.of(*names)
    jobs = list(
        get_scenario(scenario).build_jobs(
            names, mean_rate=mean_rate, seed=1, n_jobs=n_jobs
        )
    )
    cluster = Cluster(
        rates,
        [
            make_scheduler("maxtp", rates, contexts, workload=workload)
            for _ in range(n_machines)
        ],
        make_dispatcher(
            "affinity", rates=rates, workload=workload, contexts=contexts
        ),
    )
    metrics = cluster.run(
        jobs, fast_path=fast_path, engine=engine, backend=backend
    )
    return metrics, _run_stats(cluster)


#: name -> workload runner taking engine-selection kwargs only
#: (``fast_path``/``engine``/``backend``); the keys are the benchmark
#: ids committed in BENCH_CORE.json.
HOTPATH_WORKLOADS: dict[str, Callable[..., tuple[ClusterMetrics, dict | None]]] = {
    "saturated_maxit_cluster": lambda **engine_kw: saturated_cluster(
        "maxit", **engine_kw
    ),
    "saturated_srpt_cluster": lambda **engine_kw: saturated_cluster(
        "srpt", **engine_kw
    ),
    "saturated_maxit_wide": lambda **engine_kw: saturated_cluster(
        "maxit", contexts=6, backlog=40, **engine_kw
    ),
    "scenario_sweep_maxtp_affinity": lambda **engine_kw: scenario_run(
        **engine_kw
    ),
}


def measure(
    workload: str,
    *,
    fast_path: bool = True,
    engine: str | None = None,
    backend: str | None = None,
    repeats: int = 3,
) -> dict[str, object]:
    """Best-of-``repeats`` wall-clock seconds of one named workload.

    ``engine`` overrides the legacy ``fast_path`` switch when given
    (``"legacy"``/``"fast"``/``"compiled"``), exactly as in
    :meth:`Cluster.run`.  Also returns the run's completion count (a
    cheap integrity check: all engines must do identical work) and the
    memo/engine stats of the last repeat (cache efficacy; empty on the
    legacy path's non-compiled layers).
    """
    runner = HOTPATH_WORKLOADS[workload]
    best = float("inf")
    completed = None
    stats: dict[str, object] | None = None
    for _ in range(repeats):
        start = time.perf_counter()
        metrics, stats = runner(
            fast_path=fast_path, engine=engine, backend=backend
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        completed = metrics.completed
    return {
        "seconds": best,
        "completed": completed,
        "memo_stats": stats,
    }
