"""Operating-point classification on the Figure-4 curve.

The paper walks through four regimes of the turnaround-vs-arrival-rate
curve:

* **A** — arrivals so sparse that jobs almost always find an empty
  machine: turnaround is just the isolated service time; scheduling is
  irrelevant (no choices to make).
* **B** — several jobs overlap but the queue is usually empty:
  turnaround grows only through co-run interference; the coschedules
  are dictated by arrival timing, not the scheduler.
* **C** — the machine is mostly full and some jobs queue: the
  interesting regime, where a symbiotic scheduler has queued jobs to
  choose from (the paper's and Snavely's experiments sit here, with
  roughly twice as many jobs as contexts).
* **D** — arrivals close to the maximum service rate: turnaround
  explodes; operating here is avoided in practice.

:func:`classify_operating_point` maps an (arrival rate, capacity)
pair onto these regimes using M/M/K occupancy statistics, and
:func:`operating_report` summarizes the relevant quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.queueing.mmk import MMKQueue

__all__ = ["OperatingPoint", "classify_operating_point", "operating_report"]


@dataclass(frozen=True)
class OperatingPoint:
    """A classified operating point on the Figure-4 curve.

    Attributes:
        region: "A", "B", "C", or "D".
        utilization: offered load per context (rho).
        mean_jobs_in_system: M/M/K L.
        wait_probability: Erlang-C probability an arrival queues.
        scheduler_leverage: a qualitative flag — True when a symbiotic
            scheduler has meaningful choices (region C; the paper's
            experiments target ~2x jobs per context).
    """

    region: str
    utilization: float
    mean_jobs_in_system: float
    wait_probability: float

    @property
    def scheduler_leverage(self) -> bool:
        """True in the regime where job selection matters (region C)."""
        return self.region == "C"


def classify_operating_point(
    arrival_rate: float,
    service_rate_per_context: float,
    contexts: int,
    *,
    sparse_threshold: float = 0.10,
    queueing_threshold: float = 0.25,
    saturation_threshold: float = 0.97,
) -> OperatingPoint:
    """Classify a load level into the paper's A/B/C/D regimes.

    Thresholds (overridable):

    * region A: utilization below ``sparse_threshold``;
    * region B: Erlang-C wait probability below ``queueing_threshold``;
    * region D: utilization at or above ``saturation_threshold`` (or an
      unstable queue);
    * region C: everything between.
    """
    if contexts <= 0:
        raise ConfigurationError("contexts must be positive")
    queue = MMKQueue(
        arrival_rate=arrival_rate,
        service_rate=service_rate_per_context,
        servers=contexts,
    )
    if not queue.is_stable:
        return OperatingPoint(
            region="D",
            utilization=queue.utilization,
            mean_jobs_in_system=float("inf"),
            wait_probability=1.0,
        )
    utilization = queue.utilization
    wait_probability = queue.erlang_c
    if utilization < sparse_threshold:
        region = "A"
    elif utilization >= saturation_threshold:
        region = "D"
    elif wait_probability < queueing_threshold:
        region = "B"
    else:
        region = "C"
    return OperatingPoint(
        region=region,
        utilization=utilization,
        mean_jobs_in_system=queue.mean_jobs_in_system,
        wait_probability=wait_probability,
    )


def operating_report(
    capacity: float,
    contexts: int,
    loads: list[float],
) -> list[tuple[float, OperatingPoint]]:
    """Classify a sweep of load levels against a machine capacity.

    Args:
        capacity: maximum throughput of the whole machine (jobs of unit
            work per unit time).
        contexts: number of contexts K.
        loads: load levels as fractions of capacity.
    """
    per_context = capacity / contexts
    return [
        (
            load,
            classify_operating_point(load * capacity, per_context, contexts),
        )
        for load in loads
    ]
