"""Cluster-level dispatch policies: which machine gets the next job.

The multi-machine simulator is two-level, mirroring the structure of
cluster schedulers that compose placement with per-machine packing: a
*dispatcher* routes each arriving job to one machine, and the machine's
own :class:`~repro.queueing.schedulers.Scheduler` packs coschedules
from whatever the dispatcher sent it.  The paper's Section III-D claim
— multi-machine symbiotic scheduling reduces to the single-machine
problem — predicts that a type-blind balanced dispatcher (round-robin)
composed with a good per-machine scheduler already achieves the joint
optimum; the policies here let experiments test that dynamically.

* :class:`RoundRobinDispatcher` — cycle through the machines; with no
  admission caps, job *i* of the stream lands on machine ``i mod M``,
  which makes an M-machine cluster decompose into M independent
  single-machine systems (the reduction's premise).
* :class:`JoinShortestQueueDispatcher` — classic JSQ: route to the
  machine currently holding the fewest jobs.
* :class:`SymbiosisAffinityDispatcher` — route *by type* using the
  Section-IV LP fractions: the offline LP solution induces, for every
  pair of types, the expected number of co-runners of one type a job of
  the other type sees under the optimal schedule; jobs are steered
  toward (near-shortest) queues whose current mix they are most
  symbiotic with.

Dispatchers are deliberately stateful-but-deterministic objects (the
round-robin cursor, the affinity table); build a fresh one per run when
reproducibility across runs matters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import TYPE_CHECKING, Sequence

from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.codec import TypeCodec
from repro.microarch.rates import RateSource
from repro.queueing.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.queueing.cluster import Machine

__all__ = [
    "Dispatcher",
    "RoundRobinDispatcher",
    "JoinShortestQueueDispatcher",
    "SymbiosisAffinityDispatcher",
    "make_dispatcher",
]


class Dispatcher(ABC):
    """Base class: picks the target machine for each admitted job."""

    name: str = "base"
    #: True for policies whose routing consumes symbiosis rates (via an
    #: offline solve or live probing).  Estimated-rate runs require such
    #: a dispatcher to also implement ``rebuild(rates)`` so its tables
    #: refresh at every re-optimization round — a rate-consuming
    #: dispatcher without the hook is rejected up front rather than
    #: silently routing on stale oracle state.
    uses_rates: bool = False

    @abstractmethod
    def route(
        self,
        job: Job,
        machines: Sequence["Machine"],
        eligible: Sequence[int],
        clock: float,
    ) -> int:
        """Choose the machine index for ``job``.

        Args:
            job: the job about to enter the cluster.
            machines: every machine (inspect ``machine.jobs`` freely —
                queue contents are current at every dispatch decision).
            eligible: indices of machines with admission room, never
                empty.  The returned index must come from this list.
            clock: current simulation time.
        """

    def bind_codec(self, codec: TypeCodec | None) -> None:
        """Hook: the cluster hands the run's type codec to dispatchers
        with per-type state (and ``None`` when the run ends, or when
        it takes the legacy path).  Stateless policies ignore it."""

    def state_dict(self) -> dict[str, object]:
        """JSON-safe mutable run state (checkpointing).

        Online-stateless policies (JSQ, affinity — their per-run
        matrices are rebuilt by ``bind_codec``) return ``{}``; the
        round-robin cursor overrides both hooks.
        """
        return {}

    def load_state(self, state: dict[str, object]) -> None:
        """Restore mutable state captured by :meth:`state_dict`."""


class RoundRobinDispatcher(Dispatcher):
    """Cycle through machines; skip to the next one with room.

    Without per-machine admission caps the cursor advances exactly once
    per job, so job *i* lands on machine ``(start + i) mod M`` — the
    deterministic split that reduces the cluster to M independent
    single-machine systems.
    """

    name = "round_robin"

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise WorkloadError(f"start must be non-negative, got {start}")
        self._cursor = start

    def route(
        self,
        job: Job,
        machines: Sequence["Machine"],
        eligible: Sequence[int],
        clock: float,
    ) -> int:
        room = set(eligible)
        n = len(machines)
        for offset in range(n):
            index = (self._cursor + offset) % n
            if index in room:
                self._cursor = (index + 1) % n
                return index
        raise WorkloadError("route() called with no eligible machine")

    def state_dict(self) -> dict[str, object]:
        return {"cursor": self._cursor}

    def load_state(self, state: dict[str, object]) -> None:
        self._cursor = int(state["cursor"])


class JoinShortestQueueDispatcher(Dispatcher):
    """Route to the eligible machine with the fewest jobs in system.

    Ties break toward the lowest machine index, keeping runs
    deterministic.
    """

    name = "jsq"

    def route(
        self,
        job: Job,
        machines: Sequence["Machine"],
        eligible: Sequence[int],
        clock: float,
    ) -> int:
        if not eligible:
            raise WorkloadError("route() called with no eligible machine")
        return min(eligible, key=lambda i: (len(machines[i].jobs), i))


class SymbiosisAffinityDispatcher(Dispatcher):
    """Route by job type using the Section-IV LP fractions.

    Offline phase: solve the single-machine LP for the workload.  Its
    optimal coschedule time fractions induce a pairwise affinity

    ``w(a, b) = sum_s x_s * n_a(s) * (n_b(s) - [a = b])``

    — the expected number of type-``b`` co-runners a type-``a`` job has
    under the optimal schedule (so types the LP likes to co-run score
    high together, and types it keeps apart score zero).

    Online phase: among eligible machines whose queue length is within
    ``slack`` of the shortest (load still rules first-order), send the
    job to the queue whose current mix it has the highest mean affinity
    with; ties fall back to shorter-queue-then-lowest-index.  On
    identical machines with a balanced flow this behaves like
    round-robin until type imbalances appear, then consolidates
    symbiotic types.
    """

    name = "affinity"
    uses_rates = True

    def __init__(
        self,
        rates: RateSource,
        workload: Workload,
        *,
        contexts: int | None = None,
        backend: str = "simplex",
        slack: int = 1,
    ) -> None:
        if slack < 0:
            raise WorkloadError(f"slack must be non-negative, got {slack}")
        self.workload = workload
        self.slack = slack
        self._contexts = contexts
        self._backend = backend
        # Compiled per-run view: the affinity table flattened onto the
        # run codec's type ids (row-major n x n list-of-lists), so the
        # per-queue scoring loop is two list indexes per queued job
        # instead of a string-tuple dict probe.  Bound by the cluster
        # at run start, cleared at run end.
        self._matrix: list[list[float]] | None = None
        self._codec: TypeCodec | None = None
        self.rebuild(rates)

    def rebuild(self, rates: RateSource) -> None:
        """(Re-)solve the offline LP against ``rates`` and rebuild the
        affinity table.

        Called once at construction, and by the estimation layer at
        every re-optimization round with the current estimates (then
        once more with the true source when the run ends, restoring
        the constructed state — the solve is deterministic in its
        inputs).  A bound run codec re-flattens immediately.
        """
        schedule = optimal_throughput(
            rates, self.workload, contexts=self._contexts,
            backend=self._backend,
        )
        self.fractions: dict[tuple[str, ...], float] = dict(schedule.fractions)
        affinity: dict[tuple[str, str], float] = {}
        for coschedule, fraction in self.fractions.items():
            counts = Counter(coschedule)
            for a, n_a in counts.items():
                for b, n_b in counts.items():
                    co_runners = n_a * (n_b - (1 if a == b else 0))
                    if co_runners:
                        affinity[(a, b)] = (
                            affinity.get((a, b), 0.0) + fraction * co_runners
                        )
        self.affinity = affinity
        if self._codec is not None:
            self._flatten(self._codec)

    def bind_codec(self, codec: TypeCodec | None) -> None:
        """Flatten the affinity table onto the run's type ids.

        Every type named by the offline LP solution is interned up
        front; types the run introduces later get ids beyond the
        matrix and score 0.0 — exactly the ``dict.get`` default of the
        string path.
        """
        self._codec = codec
        if codec is None:
            self._matrix = None
            return
        self._flatten(codec)

    def _flatten(self, codec: TypeCodec) -> None:
        for a, b in self.affinity:
            codec.encode(a)
            codec.encode(b)
        n = codec.size
        matrix = [[0.0] * n for _ in range(n)]
        for (a, b), weight in self.affinity.items():
            matrix[codec.encode(a)][codec.encode(b)] = weight
        self._matrix = matrix

    def _mean_affinity(self, job_type: str, queue: Sequence[Job]) -> float:
        if not queue:
            return 0.0
        total = sum(
            self.affinity.get((job_type, queued.job_type), 0.0)
            for queued in queue
        )
        return total / len(queue)

    def _mean_affinity_coded(
        self, job_code: int, queue: Sequence[Job]
    ) -> float:
        """Coded twin of :meth:`_mean_affinity`.

        Sums the identical floats in the identical queue order (the
        matrix holds the dict's values, out-of-table lookups
        contribute the same 0.0), so routing scores — and therefore
        every tie-break — match the string path bit for bit.
        """
        if not queue:
            return 0.0
        matrix = self._matrix
        if job_code >= len(matrix):
            return 0.0
        row = matrix[job_code]
        n = len(row)
        total = 0.0
        for queued in queue:
            code = queued.type_code
            if code is not None and code < n:
                total += row[code]
        return total / len(queue)

    def route(
        self,
        job: Job,
        machines: Sequence["Machine"],
        eligible: Sequence[int],
        clock: float,
    ) -> int:
        if not eligible:
            raise WorkloadError("route() called with no eligible machine")
        shortest = min(len(machines[i].jobs) for i in eligible)
        shortlist = [
            i
            for i in eligible
            if len(machines[i].jobs) <= shortest + self.slack
        ]
        if self._matrix is not None and job.type_code is not None:
            job_code = job.type_code
            return min(
                shortlist,
                key=lambda i: (
                    -self._mean_affinity_coded(job_code, machines[i].jobs),
                    len(machines[i].jobs),
                    i,
                ),
            )
        return min(
            shortlist,
            key=lambda i: (
                -self._mean_affinity(job.job_type, machines[i].jobs),
                len(machines[i].jobs),
                i,
            ),
        )


def make_dispatcher(
    name: str,
    *,
    rates: RateSource | None = None,
    workload: Workload | None = None,
    contexts: int | None = None,
    backend: str = "simplex",
) -> Dispatcher:
    """Factory: build a dispatcher by name.

    ``rates`` and ``workload`` are required for "affinity" (its offline
    LP phase); the other policies need nothing.
    """
    key = name.lower().replace("-", "_")
    if key in ("rr", "round_robin", "roundrobin"):
        return RoundRobinDispatcher()
    if key in ("jsq", "join_shortest_queue", "shortest"):
        return JoinShortestQueueDispatcher()
    if key in ("affinity", "symbiosis", "symbiosis_affinity"):
        if rates is None or workload is None:
            raise WorkloadError(
                "the affinity dispatcher needs rates and workload for "
                "its offline LP phase"
            )
        return SymbiosisAffinityDispatcher(
            rates, workload, contexts=contexts, backend=backend
        )
    raise WorkloadError(
        f"unknown dispatcher {name!r}; choose round_robin, jsq, or affinity"
    )
