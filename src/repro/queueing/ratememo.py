"""Per-run rate memo with an interned-type compiled fast path.

:class:`RunRateMemo` (hoisted out of the cluster event loop in PR 2,
moved here and *compiled* in this PR) is the one per-run cache that
serves every machine's stepping, every scheduler's candidate probing,
and the dispatch layer.  It now has two modes:

* **legacy mode** (``compiled=False``) — the PR-2 behavior, string
  multisets in, string-keyed rate dicts out.  Kept verbatim so the
  fast path can be property-tested bit-identical against it.
* **compiled mode** (the default) — a :class:`~repro.microarch.codec.
  TypeCodec` interns job-type names to dense int ids once per run;
  coschedules become small sorted int tuples, and every lookup the
  event loop or a scheduler performs resolves to one dict hit on an
  int-tuple key returning *flat per-type arrays* (``rates_by_code``
  lists indexed by type id) — zero per-event string sorting, zero
  per-event ``Counter``/dict churn.

Bit-identity is load-bearing: the compiled structures are *derived
from* the legacy string path (same ``type_rates`` dicts, same division
by multiplicity, same candidate enumeration order via
:func:`repro.util.multiset.sub_multisets`), so every float the fast
path hands out is the exact float the legacy path computes, and the 27
golden traces in ``tests/golden/`` pass unchanged.

The probe layer (:meth:`probe_candidates`) memoizes, per (present-jobs
count vector, coschedule size), the full candidate multiset list with
precomputed instantaneous throughput and per-job rates.  Saturated
MAXIT/SRPT machines revisit a handful of count vectors for thousands
of events, so candidate enumeration amortizes to a dict hit — the
"delta-update" replacement for rebuilding every multiset per decision.

Cache efficacy is observable: ``stats`` mirrors
:class:`repro.microarch.rate_cache.CacheStats` (hits/misses over every
memoized layer), and :meth:`stats_dict` adds per-layer entry counts.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.microarch.codec import TypeCodec
from repro.microarch.rate_cache import CacheStats
from repro.microarch.rates import RateSource
from repro.util.multiset import sub_multisets

try:  # pragma: no cover - integer filtering only; python fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = ["RunRateMemo", "ProbeCandidate", "CandidateSet"]


def _per_job_type_rates(
    rates: RateSource, coschedule: tuple[str, ...]
) -> dict[str, float]:
    """Execution rate (work per unit time) of one job of each type.

    Same-type jobs are symmetric, so the rate depends only on the
    coschedule multiset — which is what makes per-run memoization by
    coschedule exact.
    """
    if not coschedule:
        return {}
    type_rates = rates.type_rates(coschedule)
    counts = Counter(coschedule)
    return {
        job_type: type_rates.get(job_type, 0.0) / count
        for job_type, count in counts.items()
    }


class _CompiledEntry:
    """One coded coschedule, pre-flattened for the event loop.

    ``rates_by_code[type_id]`` is the per-job rate of that type in
    this coschedule (0.0 for types not present), so stepping is a list
    index per running job instead of a string-keyed dict hit.
    """

    __slots__ = ("names", "per_job", "rates_by_code")

    def __init__(
        self,
        names: tuple[str, ...],
        per_job: dict[str, float],
        rates_by_code: list[float],
    ) -> None:
        self.names = names
        self.per_job = per_job
        self.rates_by_code = rates_by_code


class ProbeCandidate:
    """One candidate coschedule of a scheduler probe, precomputed.

    Attributes:
        names: canonical name tuple (the legacy probe key).
        count_items: ``((type_id, count), ...)`` in the legacy
            ``Counter(names).items()`` order — the order schedulers
            instantiate jobs in, which fixes float-summation order.
        it: instantaneous throughput ``it(s)`` (MAXIT's objective).
        per_job_rates: per-job rate aligned with ``count_items``
            (SRPT's divisor); 0.0 marks an infeasible type.
        srpt_items: ``count_items`` zipped with ``per_job_rates``
            (``(type_id, count, rate)`` triples) — SRPT's inner loop,
            pre-zipped so the hot path allocates nothing.
        codes_key: the sorted flat code tuple of this multiset — the
            :meth:`RunRateMemo.compiled_entry` key, precomputed so the
            compiled engine's reschedule is a dict hit with no
            per-event sorting.
    """

    __slots__ = (
        "names",
        "count_items",
        "it",
        "per_job_rates",
        "srpt_items",
        "codes_key",
    )

    def __init__(
        self,
        names: tuple[str, ...],
        count_items: tuple[tuple[int, int], ...],
        it: float,
        per_job_rates: tuple[float, ...],
    ) -> None:
        self.names = names
        self.count_items = count_items
        self.it = it
        self.per_job_rates = per_job_rates
        self.srpt_items = tuple(
            (code, count, rate)
            for (code, count), rate in zip(count_items, per_job_rates)
        )
        self.codes_key = tuple(
            sorted(
                code
                for code, count in count_items
                for _ in range(count)
            )
        )


class CandidateSet:
    """Every candidate multiset for one (count vector, size) probe.

    Attributes:
        candidates: all candidates, in the exact legacy enumeration
            order (``sorted(set(sub_multisets(present, size)))``).
        max_it_group: the candidates whose ``it`` equals the maximum —
            MAXIT's lexicographic ``(-it, age)`` key means only these
            ever need an age computed.
        feasible: candidates with strictly positive per-job rates for
            every type (SRPT skips the rest, every time, because rates
            depend only on the multiset).
        key_codes: the distinct type ids of the probe key this set was
            built for, in key (ascending-id) order — the row order of
            the compiled engine's per-decision prefix matrices.
        srpt_np: lazily attached numpy scoring arrays for the compiled
            engine's vectorized SRPT backend (``None`` until built by
            :mod:`repro.queueing.compiled`; pure-tuple backends never
            touch it).
        filter_np: lazily attached per-candidate count matrix (one row
            per candidate, one column per ``key_codes`` entry) used by
            :meth:`RunRateMemo.probe_filtered` to select the formable
            candidates of a count vector in one vectorized comparison.
    """

    __slots__ = (
        "candidates",
        "max_it_group",
        "feasible",
        "key_codes",
        "srpt_np",
        "filter_np",
    )

    def __init__(
        self,
        candidates: list[ProbeCandidate],
        key_codes: tuple[int, ...] = (),
    ) -> None:
        self.candidates = candidates
        best_it = max(c.it for c in candidates) if candidates else 0.0
        self.max_it_group = [c for c in candidates if c.it == best_it]
        self.feasible = [
            c
            for c in candidates
            if all(rate > 0.0 for rate in c.per_job_rates)
        ]
        self.key_codes = key_codes
        self.srpt_np = None
        self.filter_np = None


class RunRateMemo:
    """Per-run rate memo shared by stepping, probing, and dispatch.

    Memoizes ``type_rates`` by canonical multiset and derives the
    per-job rates the event loop steps with.  One memo serves all
    machines of a run (identical machines share one coschedule space),
    and the engine rebinds each scheduler's rate source to it for the
    run's duration, so MAXIT/SRPT candidate evaluation and engine
    stepping hit the same entries instead of maintaining separate
    caches.  Unknown attributes delegate to the wrapped source, so a
    wrapped :class:`~repro.microarch.rates.RateTable` keeps its full
    API (``machine``, ``alone_ipc``, ...).

    Args:
        source: the wrapped rate source.
        compiled: enable the interned-type fast path (int-coded
            coschedules + flat rate arrays).  ``False`` reproduces the
            PR-2 string path exactly — used by the equivalence
            property tests and the before/after profiler.
        codec: share another memo's :class:`TypeCodec` instead of
            creating a fresh one.  The estimated-rate path runs two
            memos per run (true rates for stepping, estimates for
            policy decisions) and must intern types identically so
            queue indexes built against one memo's codec serve both.
    """

    def __init__(
        self,
        source: RateSource,
        *,
        compiled: bool = True,
        codec: TypeCodec | None = None,
    ) -> None:
        self.source = source
        self.compiled = compiled
        self.codec = codec if codec is not None else TypeCodec()
        self.stats = CacheStats(label="run-memo")
        self._type_rates: dict[tuple[str, ...], dict[str, float]] = {}
        self._per_job: dict[tuple[str, ...], dict[str, float]] = {}
        self._compiled: dict[tuple[int, ...], _CompiledEntry] = {}
        self._probes: dict[
            tuple[tuple[tuple[int, int], ...], int], CandidateSet
        ] = {}

    # ------------------------------------------------------------------
    # Legacy string path (PR-2 behavior, byte for byte)
    # ------------------------------------------------------------------
    def type_rates(self, coschedule: Sequence[str]) -> dict[str, float]:
        """Total WIPC per job type in ``coschedule`` (memoized)."""
        key = tuple(sorted(coschedule))
        entry = self._type_rates.get(key)
        if entry is None:
            self.stats.misses += 1
            entry = dict(self.source.type_rates(key))
            self._type_rates[key] = entry
        else:
            self.stats.hits += 1
        return entry

    def per_job_rates(self, coschedule: tuple[str, ...]) -> dict[str, float]:
        """Per-job rate of each type in a canonical coschedule."""
        entry = self._per_job.get(coschedule)
        if entry is None:
            entry = _per_job_type_rates(self, coschedule)
            self._per_job[coschedule] = entry
        return entry

    # ------------------------------------------------------------------
    # Compiled int path
    # ------------------------------------------------------------------
    def compiled_entry(self, codes: tuple[int, ...]) -> _CompiledEntry:
        """The pre-flattened entry of a coded (sorted-int) coschedule.

        Derived from the legacy path on first sight — the per-job
        dict's floats are flattened into ``rates_by_code`` unchanged,
        so stepping arithmetic is bit-identical in both modes.
        """
        entry = self._compiled.get(codes)
        if entry is None:
            self.stats.misses += 1
            names = self.codec.canonical_names(codes)
            per_job = self.per_job_rates(names)
            rates_by_code = [0.0] * self.codec.size
            for name, rate in per_job.items():
                rates_by_code[self.codec.encode(name)] = rate
            entry = _CompiledEntry(names, per_job, rates_by_code)
            self._compiled[codes] = entry
        else:
            self.stats.hits += 1
        return entry

    def probe_candidates(
        self, counts_key: tuple[tuple[int, int], ...], size: int
    ) -> CandidateSet:
        """Candidate coschedules of ``size`` for one present-jobs
        count vector (``((type_id, count), ...)``, sorted by id).

        Built once per distinct (count vector, size) via the *legacy*
        enumeration — ``sorted(set(sub_multisets(present, size)))`` on
        name tuples — so candidate order, and therefore every
        tie-break a scheduler performs, matches the string path
        exactly.  Saturated schedulers revisit the same count vectors
        for thousands of events, so probes amortize to one dict hit.
        """
        # A candidate takes at most ``size`` jobs of any one type, so
        # count vectors that only differ beyond that cap enumerate the
        # identical candidate set — cap the key (and the reconstructed
        # multiset) so deep fluctuating backlogs share one entry
        # instead of re-enumerating per queue length.
        if any(count > size for _, count in counts_key):
            counts_key = tuple(
                (code, count if count < size else size)
                for code, count in counts_key
            )
        key = (counts_key, size)
        cached = self._probes.get(key)
        if cached is None:
            self.stats.misses += 1
            decode = self.codec.decode
            present = tuple(
                sorted(
                    name
                    for code, count in counts_key
                    for name in (decode(code),) * count
                )
            )
            candidates = []
            for names in sorted(set(sub_multisets(present, size))):
                entry = self.type_rates(names)
                counts = Counter(names)
                count_items = tuple(
                    (self.codec.encode(name), count)
                    for name, count in counts.items()
                )
                per_job_rates = tuple(
                    entry.get(name, 0.0) / count
                    for name, count in counts.items()
                )
                candidates.append(
                    ProbeCandidate(
                        names, count_items, sum(entry.values()), per_job_rates
                    )
                )
            cached = CandidateSet(
                candidates, tuple(code for code, _ in counts_key)
            )
            self._probes[key] = cached
        else:
            self.stats.hits += 1
        return cached

    def probe_filtered(
        self, counts_key: tuple[tuple[int, int], ...], size: int
    ) -> CandidateSet:
        """Compiled-engine probe builder: derive a (pre-capped) count
        vector's candidate set by *filtering the full-cap universe* of
        its present types instead of re-enumerating multisets.

        The universe — every multiset of ``size`` over the key's
        present types, i.e. the candidate set of the all-types-at-cap
        count vector — is built once through the legacy enumeration
        (so candidate order and floats are exactly the string path's)
        and then any capped count vector over the same types selects
        the candidates it can form with one count comparison each,
        **sharing** the universe's :class:`ProbeCandidate` objects.
        Both enumerations are name-sorted, so filtering the sorted
        universe yields the legacy order of the filtered set; the
        result is cached in the same probe table the legacy builder
        fills, making the two builders interchangeable entry by entry.
        """
        key = (counts_key, size)
        cached = self._probes.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        codes = tuple(code for code, _ in counts_key)
        cap_key = tuple((code, size) for code in codes)
        if cap_key == counts_key:
            # The key is its own universe — legacy build (which also
            # does the cache accounting for this miss).
            return self.probe_candidates(counts_key, size)
        universe = self.probe_candidates(cap_key, size)
        self.stats.misses += 1
        if _np is not None:
            # Vectorized formability test: one row of per-type counts
            # per universe candidate (built once per universe, integer
            # comparisons only — no float arithmetic to keep identical),
            # masked against this key's availability vector.
            matrix = universe.filter_np
            if matrix is None:
                matrix = _np.zeros(
                    (len(universe.candidates), len(codes)), dtype=_np.int64
                )
                column = {code: i for i, code in enumerate(codes)}
                for row, candidate in enumerate(universe.candidates):
                    for code, count in candidate.count_items:
                        matrix[row, column[code]] = count
                universe.filter_np = matrix
            avail_vec = _np.array(
                [count for _, count in counts_key], dtype=_np.int64
            )
            keep = _np.flatnonzero((matrix <= avail_vec).all(axis=1))
            pool = universe.candidates
            candidates = [pool[i] for i in keep]
        else:
            avail = dict(counts_key)
            get = avail.get
            candidates = [
                candidate
                for candidate in universe.candidates
                if all(
                    count <= get(code, 0)
                    for code, count in candidate.count_items
                )
            ]
        cached = CandidateSet(candidates, codes)
        self._probes[key] = cached
        return cached

    def probe_cached(
        self, counts_key: tuple[tuple[int, int], ...], size: int
    ) -> CandidateSet | None:
        """Direct probe lookup for a key the caller has *already
        capped* at ``size`` (the compiled engine builds capped keys
        from its count vectors, so the normalization pass in
        :meth:`probe_candidates` would be a per-event no-op).  Returns
        ``None`` on a miss — the caller then takes the building path.
        """
        cached = self._probes.get((counts_key, size))
        if cached is not None:
            self.stats.hits += 1
        return cached

    def clear(self) -> None:
        """Flush every memoized rate layer, keeping the codec.

        The estimation layer calls this when the estimator publishes a
        new epoch of rates: all cached floats are stale, but interned
        type ids (and therefore any queue index keyed on the codec)
        stay valid, so only the rate-derived layers are dropped.
        """
        self._type_rates.clear()
        self._per_job.clear()
        self._compiled.clear()
        self._probes.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sizes(self) -> dict[str, int]:
        """Entry counts of every memoized layer."""
        return {
            "type_rates": len(self._type_rates),
            "per_job": len(self._per_job),
            "compiled": len(self._compiled),
            "probe_sets": len(self._probes),
            "interned_types": self.codec.size,
        }

    def stats_dict(self) -> dict[str, object]:
        """JSON-friendly stats: hit/miss counters plus layer sizes."""
        return {**self.stats.as_dict(), "sizes": self.sizes()}

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.source, name)
