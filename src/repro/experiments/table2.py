"""Table II: coschedule fractions by heterogeneity.

For each heterogeneity level (number of distinct job types in the
coschedule) the table reports the average instantaneous throughput and
the fraction of time the FCFS, optimal, and worst schedulers spend
there, averaged over the workloads.  The paper's pattern: throughput
rises with heterogeneity; the worst scheduler hides in homogeneous
coschedules; the optimal scheduler shifts toward heterogeneous ones —
much more successfully on the quad-core than on the SMT core, where
unfair progress rates pin it near FCFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.heterogeneity import heterogeneity_table
from repro.experiments.common import ExperimentContext, format_table
from repro.microarch.rates import RateTable
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Table2Row", "compute_table2", "run", "render"]


@dataclass(frozen=True)
class Table2Row:
    """One aggregated Table-II row."""

    config: str
    heterogeneity: int
    mean_instantaneous_tp: float
    fcfs_fraction: float
    optimal_fraction: float
    worst_fraction: float
    draw_probability: float


def compute_table2(
    rates: RateTable, workloads, *, config: str
) -> list[Table2Row]:
    """Average the per-workload heterogeneity tables."""
    sums: dict[int, list[float]] = {}
    for workload in workloads:
        table = heterogeneity_table(rates, workload)
        for row in table.rows:
            acc = sums.setdefault(row.heterogeneity, [0.0] * 5)
            acc[0] += row.mean_instantaneous_tp
            acc[1] += row.fcfs_fraction
            acc[2] += row.optimal_fraction
            acc[3] += row.worst_fraction
            acc[4] += row.draw_probability
    n = len(workloads)
    return [
        Table2Row(
            config=config,
            heterogeneity=h,
            mean_instantaneous_tp=acc[0] / n,
            fcfs_fraction=acc[1] / n,
            optimal_fraction=acc[2] / n,
            worst_fraction=acc[3] / n,
            draw_probability=acc[4] / n,
        )
        for h, acc in sorted(sums.items())
    ]


def run(context: ExperimentContext) -> list[Table2Row]:
    """Compute Table II for both machine configurations."""
    return compute_table2(
        context.smt_rates, context.workloads, config="smt"
    ) + compute_table2(context.quad_rates, context.workloads, config="quad")


def render(rows: list[Table2Row]) -> str:
    """Text rendering in the paper's Table-II layout."""
    return format_table(
        ["config", "heterogeneity", "avg inst. TP", "frac FCFS",
         "frac optimal", "frac worst", "random draw"],
        [
            (
                r.config,
                str(r.heterogeneity),
                f"{r.mean_instantaneous_tp:.2f}",
                f"{r.fcfs_fraction:.1%}",
                f"{r.optimal_fraction:.1%}",
                f"{r.worst_fraction:.1%}",
                f"{r.draw_probability:.1%}",
            )
            for r in rows
        ],
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[Table2Row]:
    return run(context)


register(Experiment(
    name="table2",
    kind="table",
    title="Table II — coschedule fractions by heterogeneity",
    run=_registry_run,
    render=render,
))
