"""Chaos harness: the fault layer swept over MTBF × scenarios × dispatch.

The cluster now fails like a real one (:mod:`repro.queueing.faults`):
machines crash and are repaired, correlated outages take fractions of
the fleet down at once, transient DEGRADED episodes slow machines, and
jobs retry with exponential backoff until a budget abandons them.
This experiment is the observable surface of that layer — and its
regression net.  Every (scenario, dispatcher) cell runs a small grid:

* ``none`` — the historical fault-free engine (``faults=None``);
* ``zero`` — a default :class:`~repro.queueing.faults.FaultConfig`
  through the fault-aware code path.  The ``compare_bench --faults``
  gate asserts this row is **bit-identical** to ``none`` (the
  zero-fault identity is structural, not approximate);
* faulty cells at increasing MTBF (fixed MTTR), each reporting
  availability, goodput (work rate net of progress lost to crashes),
  lost work, retries, abandonment, and shed arrivals alongside the
  usual throughput/turnaround metrics.  The gate also checks
  availability is monotone non-decreasing in MTBF — the sanity law
  ``availability ≈ MTBF / (MTBF + MTTR)`` at the grid's scale.

MTBF/MTTR are expressed as fractions of the cell's estimated run
duration, so every scenario sees a comparable number of failure events
regardless of its traffic shape.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.experiments.common import (
    ExperimentContext,
    format_table,
    sample_workloads,
    snapshot_rates,
)
from repro.experiments.registry import Experiment, RunOptions, register
from repro.microarch.rates import RateSource, infer_contexts
from repro.queueing.cluster import Cluster
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.faults import FaultConfig
from repro.queueing.scenarios import Scenario, get_scenario
from repro.queueing.schedulers import make_scheduler
from repro.queueing.sharding import parallel_map

__all__ = [
    "FAULT_SCENARIOS",
    "DISPATCHERS",
    "MTBF_FRACTIONS",
    "MTTR_FRACTION",
    "FaultOutcome",
    "fault_config_for",
    "run_fault_cell",
    "compute_fault_sweep",
    "run",
    "render",
]

#: Scenarios the chaos harness sweeps (a traffic-shape cross-section,
#: not the full registry — the fault axis multiplies every cell).
FAULT_SCENARIOS: tuple[str, ...] = (
    "baseline_poisson",
    "bursty_mmpp",
    "heavy_tail",
)

#: Dispatch policies under churn; the first is the delta baseline.
DISPATCHERS: tuple[str, ...] = ("round_robin", "jsq", "affinity")

#: MTBF grid as fractions of the cell's estimated duration, widely
#: spaced so the availability-monotonicity gate is robust to stochastic
#: wiggle (the law availability ~ mtbf/(mtbf+mttr) dominates noise).
MTBF_FRACTIONS: tuple[float, ...] = (0.08, 0.25, 0.75)

#: MTTR as a fraction of the estimated duration — fixed across the
#: MTBF grid, so availability strictly orders with MTBF.
MTTR_FRACTION = 0.05


@dataclass(frozen=True)
class FaultOutcome:
    """One (scenario, dispatcher, fault mode) cell of the chaos sweep.

    Attributes:
        scenario: workload scenario name.
        dispatcher: dispatch policy.
        mode: ``"none"`` (faults=None), ``"zero"`` (default
            FaultConfig — must be bit-identical to ``"none"``), or
            ``"mtbf=<fraction>"`` for a faulty grid point.
        mtbf: absolute mean time between failures (0 when inactive).
        mttr: absolute mean time to repair (0 when inactive).
        n_machines: cluster size M.
        n_jobs: jobs offered.
        throughput: cluster work rate over the run (gross).
        goodput: work rate net of progress lost to crashes.
        mean_turnaround: average turnaround of completed jobs (retry
            delays included — retried jobs keep their arrival time).
        availability: 1 - mean fraction of machine-time DOWN.
        degraded_fraction: mean fraction of machine-time DEGRADED.
        lost_work: total progress destroyed by crashes.
        crashes: machine-down events (individual + outage-planned).
        retried: retry requeues.
        abandoned: jobs dropped after exhausting the retry budget.
        shed: arrivals dropped by the admission-control valve.
        completed: jobs finished inside the measurement window.
        engine: engine that advanced the run (provenance — all
            engines are bit-identical, faults included).
    """

    scenario: str
    dispatcher: str
    mode: str
    mtbf: float
    mttr: float
    n_machines: int
    n_jobs: int
    throughput: float
    goodput: float
    mean_turnaround: float
    availability: float
    degraded_fraction: float
    lost_work: float
    crashes: int
    retried: int
    abandoned: int
    shed: int
    completed: int
    engine: str = "compiled"


def _cell_seed(base: int, scenario: str, dispatcher: str) -> int:
    """Deterministic per-cell seed, stable under sweep reordering."""
    tag = f"{scenario}:{dispatcher}".encode()
    return (base * 1_000_003 + zlib.crc32(tag)) % 2**31


def fault_config_for(
    mtbf_fraction: float, duration: float, *, seed: int
) -> FaultConfig:
    """The sweep's faulty config at one MTBF grid point.

    Individual crashes with resume-fraction recovery, degraded
    episodes, and a shed valve — the processes whose effects the
    outcome columns report.  Scaled to the cell's estimated duration
    so short quick-mode runs still see failures.
    """
    return FaultConfig(
        seed=seed,
        mtbf=mtbf_fraction * duration,
        mttr=MTTR_FRACTION * duration,
        degraded_mtbf=0.5 * duration,
        degraded_duration=0.05 * duration,
        degraded_factor=0.5,
        crash_policy="resume_fraction",
        resume_fraction=0.5,
        retry_budget=3,
        backoff_base=0.01 * duration,
        shed_after=0.5 * duration,
    )


def run_fault_cell(
    rates: RateSource,
    workload: Workload,
    scenario: Scenario,
    dispatcher: str,
    mode: str,
    *,
    n_machines: int = 3,
    scheduler: str = "maxtp",
    n_jobs: int | None = None,
    seed: int = 0,
    contexts: int | None = None,
    capacity: float | None = None,
    engine: str | None = "compiled",
    backend: str | None = None,
) -> FaultOutcome:
    """Run one (scenario, dispatcher, fault mode) cell.

    ``mode`` is ``"none"``, ``"zero"``, or ``"mtbf=<fraction>"``.
    The offered load is normalized exactly as in the scenario sweep,
    so the ``none`` row of a cell matches the scenario sweep's cell
    and the fault rows are deltas attributable to faults alone.
    """
    k = infer_contexts(rates, contexts)
    if capacity is None:
        capacity = n_machines * optimal_throughput(
            rates, workload, contexts=k
        ).throughput
    count = scenario.n_jobs if n_jobs is None else n_jobs
    mean_rate = (
        0.0
        if scenario.saturated
        else scenario.load * capacity / scenario.mean_size
    )
    cell_seed = _cell_seed(seed, scenario.name, dispatcher)
    duration = (
        count * scenario.mean_size / capacity
        if scenario.saturated
        else count / mean_rate
    )
    if mode == "none":
        faults: FaultConfig | None = None
        mtbf = mttr = 0.0
    elif mode == "zero":
        faults = FaultConfig(seed=cell_seed)
        mtbf = mttr = 0.0
    elif mode.startswith("mtbf="):
        fraction = float(mode[len("mtbf="):])
        faults = fault_config_for(fraction, duration, seed=cell_seed)
        mtbf, mttr = faults.mtbf, faults.mttr
    else:
        raise ValueError(f"unknown fault mode {mode!r}")

    cluster = Cluster(
        rates,
        [
            make_scheduler(scheduler, rates, k, workload=workload)
            for _ in range(n_machines)
        ],
        make_dispatcher(
            dispatcher, rates=rates, workload=workload, contexts=k
        ),
    )
    stop_when_fewer_than = n_machines * k if scenario.saturated else None
    keep_in_system = (
        scenario.backlog_per_machine if scenario.saturated else None
    )
    metrics = cluster.run(
        scenario.build_jobs(
            workload.types,
            mean_rate=mean_rate,
            seed=cell_seed,
            n_jobs=count,
        ),
        stop_when_fewer_than=stop_when_fewer_than,
        keep_in_system=keep_in_system,
        engine=engine,
        backend=backend,
        faults=faults,
    )
    stats = cluster.last_fault_stats or {}
    lost_work = float(stats.get("lost_work", 0.0))
    measured = metrics.per_machine[0].measured_time
    goodput = metrics.throughput - (
        lost_work / measured if measured > 0.0 else 0.0
    )
    return FaultOutcome(
        scenario=scenario.name,
        dispatcher=dispatcher,
        mode=mode,
        mtbf=mtbf,
        mttr=mttr,
        n_machines=n_machines,
        n_jobs=count,
        throughput=metrics.throughput,
        goodput=goodput,
        mean_turnaround=(
            metrics.mean_turnaround if metrics.completed else float("nan")
        ),
        availability=float(stats.get("availability", 1.0)),
        degraded_fraction=float(stats.get("degraded_fraction", 0.0)),
        lost_work=lost_work,
        crashes=int(stats.get("crashes", 0)),
        retried=int(stats.get("retried", 0)),
        abandoned=int(stats.get("abandoned", 0)),
        shed=int(stats.get("shed", 0)),
        completed=metrics.completed,
        engine=engine or "fast",
    )


def _cell_worker(payload: tuple) -> FaultOutcome:
    """Spawn-safe cell runner over a frozen rate snapshot."""
    rates, workload, scenario, dispatcher, mode, kwargs = payload
    return run_fault_cell(
        rates, workload, scenario, dispatcher, mode, **kwargs
    )


def compute_fault_sweep(
    rates: RateSource,
    workload: Workload,
    *,
    scenarios: Sequence[str] = FAULT_SCENARIOS,
    dispatchers: Sequence[str] = DISPATCHERS,
    mtbf_fractions: Sequence[float] = MTBF_FRACTIONS,
    n_machines: int = 3,
    scheduler: str = "maxtp",
    n_jobs: int | None = None,
    seed: int = 0,
    contexts: int | None = None,
    engine: str | None = "compiled",
    backend: str | None = None,
    jobs: int = 1,
) -> list[FaultOutcome]:
    """The full chaos grid: scenarios × dispatchers × fault modes.

    Each cell runs ``none``, ``zero``, then the faulty MTBF grid.
    Cells share nothing, so ``jobs > 1`` fans them out over processes
    (bit-identical to a serial sweep — workers get a frozen
    :func:`snapshot_rates` table).
    """
    k = infer_contexts(rates, contexts)
    capacity = n_machines * optimal_throughput(
        rates, workload, contexts=k
    ).throughput
    modes = ["none", "zero"] + [
        f"mtbf={fraction:g}" for fraction in mtbf_fractions
    ]
    cells = [
        (get_scenario(name), dispatcher, mode)
        for name in scenarios
        for dispatcher in dispatchers
        for mode in modes
    ]
    kwargs = {
        "n_machines": n_machines,
        "scheduler": scheduler,
        "n_jobs": n_jobs,
        "seed": seed,
        "contexts": k,
        "capacity": capacity,
        "engine": engine,
        "backend": backend,
    }
    if jobs > 1 and len(cells) > 1:
        frozen = snapshot_rates(rates, workload.types, k)
        payloads = [
            (frozen, workload, scenario, dispatcher, mode, kwargs)
            for scenario, dispatcher, mode in cells
        ]
        return parallel_map(_cell_worker, payloads, jobs)
    return [
        run_fault_cell(
            rates, workload, scenario, dispatcher, mode, **kwargs
        )
        for scenario, dispatcher, mode in cells
    ]


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    n_machines: int = 3,
    n_jobs: int | None = None,
    seed: int = 0,
    jobs: int = 1,
) -> list[FaultOutcome]:
    """The chaos sweep on one deterministically sampled workload."""
    workload = sample_workloads(context.workloads, 1, seed=seed)[0]
    return compute_fault_sweep(
        context.rates_for(config),
        workload,
        n_machines=n_machines,
        n_jobs=n_jobs,
        seed=seed,
        jobs=jobs,
    )


def render(outcomes: list[FaultOutcome]) -> str:
    """Text rendering: one row per cell, grouped by scenario."""
    if not outcomes:
        return "no fault cells swept"
    rows = []
    for o in outcomes:
        rows.append((
            o.scenario,
            o.dispatcher,
            o.mode,
            f"{o.availability:.3f}",
            f"{o.throughput:.3f}",
            f"{o.goodput:.3f}",
            (
                f"{o.mean_turnaround:.2f}"
                if o.mean_turnaround == o.mean_turnaround
                else "n/a"
            ),
            f"{o.lost_work:.1f}",
            str(o.retried),
            str(o.abandoned),
            str(o.shed),
        ))
    table = format_table(
        [
            "scenario",
            "dispatcher",
            "faults",
            "avail",
            "TP",
            "goodput",
            "turnaround",
            "lost",
            "retried",
            "abandoned",
            "shed",
        ],
        rows,
    )
    zero_rows = [o for o in outcomes if o.mode == "zero"]
    faulty = [o for o in outcomes if o.mode.startswith("mtbf=")]
    summary = (
        f"\n\n{len(outcomes)} cells "
        f"({len({o.scenario for o in outcomes})} scenarios x "
        f"{len({o.dispatcher for o in outcomes})} dispatchers x "
        f"{len({o.mode for o in outcomes})} fault modes, "
        f"{outcomes[0].n_machines} machines).\n"
        "zero-fault rows are bit-identical to the fault-free engine "
        f"({len(zero_rows)} checked by compare_bench --faults); "
        "mean faulty availability "
        f"{sum(o.availability for o in faulty) / len(faulty):.3f}"
        if faulty
        else ""
    )
    return table + summary


def _registry_run(
    context: ExperimentContext, options: RunOptions
) -> list[FaultOutcome]:
    return run(
        context,
        n_jobs=250 if options.quick else None,
        seed=options.seed_for("fault_sweep"),
        jobs=options.jobs,
    )


register(Experiment(
    name="fault_sweep",
    kind="analysis",
    title="Fault sweep — chaos harness: failures/repairs x scenarios x "
    "dispatch policies",
    run=_registry_run,
    render=render,
))
