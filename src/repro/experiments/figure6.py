"""Figure 6: achieved saturation throughput of the four schedulers.

Each workload is run with the arrival rate above the maximum throughput
(a saturated backlog); the achieved throughput of MAXIT, SRPT, and
MAXTP is reported relative to FCFS, next to the theoretical LP maximum
and minimum.  The paper's pattern: SRPT matches FCFS, MAXIT dips
slightly below (it starves slow jobs and pays later), and MAXTP tracks
the LP maximum almost exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, format_table, sample_workloads
from repro.microarch.rates import RateTable
from repro.queueing.experiment import run_saturation_experiment
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Figure6Point", "compute_figure6", "run", "render"]


@dataclass(frozen=True)
class Figure6Point:
    """One workload's saturation throughputs, normalized to FCFS (DES)."""

    workload_label: str
    fcfs_throughput: float
    maxit_relative: float
    srpt_relative: float
    maxtp_relative: float
    lp_maximum_relative: float
    lp_minimum_relative: float
    fcfs_analytic_relative: float


def compute_figure6(
    rates: RateTable,
    workloads: Sequence[Workload],
    *,
    n_jobs: int = 3_000,
    seed: int = 0,
) -> list[Figure6Point]:
    """Run the saturation experiment for every scheduler and workload.

    Points are sorted by increasing LP-maximum headroom, matching the
    paper's x-axis ordering.
    """
    points = []
    for workload in workloads:
        base = run_saturation_experiment(
            rates, workload, "fcfs", n_jobs=n_jobs, seed=seed
        ).throughput
        results = {
            name: run_saturation_experiment(
                rates, workload, name, n_jobs=n_jobs, seed=seed
            ).throughput
            for name in ("maxit", "srpt", "maxtp")
        }
        points.append(
            Figure6Point(
                workload_label=workload.label(),
                fcfs_throughput=base,
                maxit_relative=results["maxit"] / base,
                srpt_relative=results["srpt"] / base,
                maxtp_relative=results["maxtp"] / base,
                lp_maximum_relative=optimal_throughput(rates, workload).throughput
                / base,
                lp_minimum_relative=worst_throughput(rates, workload).throughput
                / base,
                fcfs_analytic_relative=fcfs_throughput(rates, workload).throughput
                / base,
            )
        )
    points.sort(key=lambda p: p.lp_maximum_relative)
    return points


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    max_workloads: int = 30,
    n_jobs: int = 3_000,
    seed: int = 0,
) -> list[Figure6Point]:
    """Figure 6 on a deterministic workload subsample."""
    workloads = sample_workloads(context.workloads, max_workloads, seed=seed)
    return compute_figure6(
        context.rates_for(config), workloads, n_jobs=n_jobs, seed=seed
    )


def render(points: list[Figure6Point]) -> str:
    """Per-workload series plus scheduler means."""
    table = format_table(
        ["workload", "MAXIT", "SRPT", "MAXTP", "LP max", "LP min"],
        [
            (
                p.workload_label,
                f"{p.maxit_relative:.3f}",
                f"{p.srpt_relative:.3f}",
                f"{p.maxtp_relative:.3f}",
                f"{p.lp_maximum_relative:.3f}",
                f"{p.lp_minimum_relative:.3f}",
            )
            for p in points
        ],
    )
    n = len(points)
    means = (
        f"\nmeans vs FCFS: MAXIT "
        f"{sum(p.maxit_relative for p in points) / n:.3f}, SRPT "
        f"{sum(p.srpt_relative for p in points) / n:.3f}, MAXTP "
        f"{sum(p.maxtp_relative for p in points) / n:.3f}, LP max "
        f"{sum(p.lp_maximum_relative for p in points) / n:.3f}"
    )
    return table + means


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[Figure6Point]:
    return run(
        context,
        max_workloads=options.workloads(30),
        seed=options.seed_for("figure6"),
    )


register(Experiment(
    name="figure6",
    kind="figure",
    title="Fig. 6 — achieved saturation throughput per workload",
    run=_registry_run,
    render=render,
))
