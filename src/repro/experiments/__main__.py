"""``python -m repro.experiments`` — the repository's front door."""

from __future__ import annotations

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
