"""Section V.B: optimal gain versus the number of job types N.

The paper notes that increasing N barely helps the optimal scheduler:
with N = 8 the average gain is only 4.5% on the SMT configuration
(versus 3% at N = 4).  More types widen the coschedule menu but the
equal-work constraint tightens in step (one extra equality per type).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput
from repro.core.workload import all_workloads
from repro.experiments.common import ExperimentContext, format_table, sample_workloads
from repro.microarch.benchmarks import BENCHMARK_NAMES
from repro.microarch.rates import RateTable
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["NTypesPoint", "compute_ntypes", "run", "render"]


@dataclass(frozen=True)
class NTypesPoint:
    """Mean optimal-over-FCFS gain for one N."""

    n_types: int
    mean_gain: float
    max_gain: float
    workloads: int


def compute_ntypes(
    rates: RateTable,
    *,
    n_values: Sequence[int] = (2, 3, 4, 6, 8),
    max_workloads_per_n: int = 60,
    seed: int = 0,
) -> list[NTypesPoint]:
    """Mean optimal gain over FCFS for each workload size N."""
    points = []
    for n in n_values:
        workloads = all_workloads(BENCHMARK_NAMES, n)
        if len(workloads) > max_workloads_per_n:
            workloads = sample_workloads(
                workloads, max_workloads_per_n, seed=seed
            )
        gains = []
        for workload in workloads:
            best = optimal_throughput(rates, workload).throughput
            base = fcfs_throughput(rates, workload).throughput
            gains.append(best / base - 1.0)
        points.append(
            NTypesPoint(
                n_types=n,
                mean_gain=sum(gains) / len(gains),
                max_gain=max(gains),
                workloads=len(gains),
            )
        )
    return points


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    n_values: Sequence[int] = (2, 3, 4, 6, 8),
    max_workloads_per_n: int = 60,
    seed: int = 0,
) -> list[NTypesPoint]:
    """The N-sweep on one machine configuration."""
    return compute_ntypes(
        context.rates_for(config),
        n_values=n_values,
        max_workloads_per_n=max_workloads_per_n,
        seed=seed,
    )


def render(points: list[NTypesPoint]) -> str:
    """Text rendering of the N-sweep."""
    return format_table(
        ["N job types", "mean optimal gain", "max gain", "workloads"],
        [
            (
                str(p.n_types),
                f"+{p.mean_gain:.1%}",
                f"+{p.max_gain:.1%}",
                str(p.workloads),
            )
            for p in points
        ],
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[NTypesPoint]:
    return run(context, seed=options.seed_for("ntypes"))


register(Experiment(
    name="ntypes",
    kind="analysis",
    title="Sec. V.B — optimal gain vs number of job types",
    run=_registry_run,
    render=render,
))
