"""Makespan on small job sets (the Section-II related-work experiment).

Settle et al. and Xu et al. evaluated symbiosis-aware schedulers by the
makespan of 8-16 jobs.  The paper argues such experiments are dominated
by the drain tail (idle contexts once fewer jobs than contexts remain)
— Xu et al. themselves found that a symbiosis-unaware long-job-first
scheduler beat their symbiosis-aware one.  This driver reproduces the
comparison: FCFS, LJF, MAXIT, and SRPT on small fixed job sets, with
the drain fraction made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, format_table, sample_workloads
from repro.microarch.rates import RateTable
from repro.queueing.makespan import run_makespan_experiment
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["MakespanCell", "compute_makespan", "run", "render", "SCHEDULERS"]

SCHEDULERS: tuple[str, ...] = ("fcfs", "ljf", "maxit", "srpt")


@dataclass(frozen=True)
class MakespanCell:
    """One (scheduler, set size) cell, averaged over workloads/seeds."""

    scheduler: str
    n_jobs: int
    mean_makespan: float
    makespan_vs_fcfs: float
    mean_drain_fraction: float
    samples: int


def compute_makespan(
    rates: RateTable,
    workloads: Sequence[Workload],
    *,
    set_sizes: Sequence[int] = (8, 16),
    seeds: Sequence[int] = (0, 1, 2),
    schedulers: Sequence[str] = SCHEDULERS,
) -> list[MakespanCell]:
    """Average makespans over (workload, seed) samples."""
    cells = []
    for n_jobs in set_sizes:
        runs: dict[str, list] = {name: [] for name in schedulers}
        for workload in workloads:
            for seed in seeds:
                for name in schedulers:
                    runs[name].append(
                        run_makespan_experiment(
                            rates, workload, name, n_jobs=n_jobs, seed=seed
                        )
                    )
        baseline = runs.get("fcfs")
        for name in schedulers:
            results = runs[name]
            count = len(results)
            if baseline is not None:
                vs_fcfs = (
                    sum(
                        r.makespan / b.makespan
                        for r, b in zip(results, baseline)
                    )
                    / count
                )
            else:
                vs_fcfs = float("nan")
            cells.append(
                MakespanCell(
                    scheduler=name,
                    n_jobs=n_jobs,
                    mean_makespan=sum(r.makespan for r in results) / count,
                    makespan_vs_fcfs=vs_fcfs,
                    mean_drain_fraction=sum(
                        r.drain_fraction for r in results
                    )
                    / count,
                    samples=count,
                )
            )
    return cells


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    max_workloads: int = 10,
    seed: int = 0,
) -> list[MakespanCell]:
    """The makespan comparison on a deterministic workload subsample."""
    workloads = sample_workloads(context.workloads, max_workloads, seed=seed)
    return compute_makespan(context.rates_for(config), workloads)


def render(cells: list[MakespanCell]) -> str:
    """Text rendering of the makespan comparison."""
    table = format_table(
        ["jobs", "scheduler", "makespan", "vs FCFS", "drain fraction"],
        [
            (
                str(c.n_jobs),
                c.scheduler,
                f"{c.mean_makespan:.3f}",
                f"{c.makespan_vs_fcfs:.3f}",
                f"{c.mean_drain_fraction:.1%}",
            )
            for c in cells
        ],
    )
    return table + (
        "\n\nNote the drain fractions: with 8-16 jobs a large share of "
        "the makespan has idle\ncontexts, which is why the paper warns "
        "against judging symbiotic scheduling by\nsmall-set makespans "
        "(and why LJF is competitive here without knowing any rates)."
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[MakespanCell]:
    return run(
        context,
        max_workloads=options.workloads(10),
        seed=options.seed_for("makespan"),
    )


register(Experiment(
    name="makespan",
    kind="analysis",
    title="Sec. II — small-set makespan (LJF vs symbiosis-aware)",
    run=_registry_run,
    render=render,
))
