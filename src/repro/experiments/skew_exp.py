"""Workload-skew sensitivity (the Section III-D weighting remark).

The paper assumes equal work per type and notes this is *advantageous*
to symbiotic scheduling: "if a particular job type had more weight than
the other job types ..., it would dominate the execution, thereby
limiting the possibilities to exploit symbiosis."  This driver
quantifies the remark: it sweeps a geometric skew over the per-type
work shares and recomputes the optimal-over-FCFS gain at each level.
The gain should shrink toward zero as one type dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, format_table, sample_workloads
from repro.microarch.rates import RateTable
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["SkewPoint", "compute_skew", "run", "render", "geometric_weights"]


def geometric_weights(workload: Workload, skew: float) -> dict[str, float]:
    """Per-type shares 1, skew, skew^2, ... over the sorted types."""
    if skew <= 0.0:
        raise ValueError(f"skew must be positive, got {skew}")
    return {
        b: skew**i for i, b in enumerate(workload.types)
    }


@dataclass(frozen=True)
class SkewPoint:
    """Mean optimal-over-FCFS gain at one skew level."""

    skew: float
    dominant_share: float
    mean_gain: float
    workloads: int


def compute_skew(
    rates: RateTable,
    workloads: Sequence[Workload],
    *,
    skews: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
) -> list[SkewPoint]:
    """Sweep the work-share skew and average the optimal gain."""
    points = []
    for skew in skews:
        gains = []
        dominant = 0.0
        for workload in workloads:
            weights = geometric_weights(workload, skew)
            total = sum(weights.values())
            dominant = max(weights.values()) / total
            best = optimal_throughput(
                rates, workload, type_weights=weights
            ).throughput
            base = fcfs_throughput(
                rates, workload, type_weights=weights
            ).throughput
            gains.append(best / base - 1.0)
        points.append(
            SkewPoint(
                skew=skew,
                dominant_share=dominant,
                mean_gain=sum(gains) / len(gains),
                workloads=len(gains),
            )
        )
    return points


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    max_workloads: int = 30,
    seed: int = 0,
) -> list[SkewPoint]:
    """The skew sweep on a deterministic workload subsample."""
    workloads = sample_workloads(context.workloads, max_workloads, seed=seed)
    return compute_skew(context.rates_for(config), workloads)


def render(points: list[SkewPoint]) -> str:
    """Text rendering of the skew sweep."""
    table = format_table(
        ["skew", "dominant type share", "mean optimal gain", "workloads"],
        [
            (
                f"{p.skew:g}",
                f"{p.dominant_share:.0%}",
                f"+{p.mean_gain:.1%}",
                str(p.workloads),
            )
            for p in points
        ],
    )
    return table + (
        "\n\nAs one job type's work share grows, it dominates execution "
        "and the symbiotic\nscheduler loses its freedom — the paper's "
        "justification for calling the equal-work\nassumption "
        "'advantageous to symbiotic scheduling'."
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[SkewPoint]:
    return run(
        context,
        max_workloads=options.workloads(30),
        seed=options.seed_for("skew"),
    )


register(Experiment(
    name="skew",
    kind="analysis",
    title="Sec. III-D — work-share skew vs symbiotic headroom",
    run=_registry_run,
    render=render,
))
