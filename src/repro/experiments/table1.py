"""Table I: the benchmark roster.

The paper's Table I lists the 12 selected SPEC CPU2006 benchmarks and
their inputs.  Our stand-in roster carries model parameters instead of
inputs; this driver prints the roster with the derived alone-IPC on
both machines, showing the low-to-high-interference coverage the paper
selected for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext, format_table
from repro.microarch.benchmarks import default_roster
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Table1Row", "compute_table1", "render"]


@dataclass(frozen=True)
class Table1Row:
    """One roster entry with derived headline characteristics."""

    name: str
    category: str
    smt_alone_ipc: float
    quad_alone_ipc: float
    llc_mpki_warm: float
    mlp: float


def compute_table1(context: ExperimentContext) -> list[Table1Row]:
    """Roster with alone-IPCs measured on both machines."""
    rows = []
    for name, job in default_roster().items():
        rows.append(
            Table1Row(
                name=name,
                category=job.category,
                smt_alone_ipc=context.smt_rates.alone_ipc(name),
                quad_alone_ipc=context.quad_rates.alone_ipc(name),
                llc_mpki_warm=job.llc_mpki(context.quad_rates.machine.llc_mb),
                mlp=job.mlp,
            )
        )
    return rows


def render(rows: list[Table1Row]) -> str:
    """Text rendering of Table I."""
    return format_table(
        ["benchmark", "class", "IPC alone (SMT)", "IPC alone (quad)",
         "warm LLC MPKI", "MLP"],
        [
            (
                r.name,
                r.category,
                f"{r.smt_alone_ipc:.2f}",
                f"{r.quad_alone_ipc:.2f}",
                f"{r.llc_mpki_warm:.1f}",
                f"{r.mlp:.1f}",
            )
            for r in rows
        ],
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[Table1Row]:
    return compute_table1(context)


register(Experiment(
    name="table1",
    kind="table",
    title="Table I — benchmark roster",
    run=_registry_run,
    render=render,
))
