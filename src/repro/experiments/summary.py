"""One-screen digest: the paper's headline numbers, recomputed live.

Prints the quantities the abstract leads with — per-job IPC
variability, per-coschedule instantaneous-throughput variability, and
the optimal scheduler's average-throughput gain — next to the paper's
published values, for both machine configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext, format_table
from repro.experiments.figure1 import compute_figure1
from repro.experiments.figure2 import compute_figure2
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["HeadlineNumbers", "compute_summary", "render"]

_PAPER = {
    "smt": {
        "job_spread": 0.37,
        "it_spread": 0.69,
        "optimal_gain": 0.03,
        "worst_loss": -0.09,
        "slope": 0.73,
        "bridged": 0.76,
    },
    "quad": {
        "job_spread": 0.35,
        "it_spread": 0.48,
        "optimal_gain": 0.06,
        "worst_loss": None,  # not quoted as a single number in the text
        "slope": 0.56,
        "bridged": 0.63,
    },
}


@dataclass(frozen=True)
class HeadlineNumbers:
    """Measured headline quantities for one configuration."""

    config: str
    job_spread: float
    it_spread: float
    optimal_gain: float
    worst_loss: float
    slope: float
    bridged: float


def compute_summary(context: ExperimentContext) -> list[HeadlineNumbers]:
    """Recompute the abstract's numbers over the context's workloads."""
    numbers = []
    for config in ("smt", "quad"):
        rates = context.rates_for(config)
        bars, _ = compute_figure1(rates, context.workloads, config=config)
        series = compute_figure2(rates, context.workloads, config=config)
        numbers.append(
            HeadlineNumbers(
                config=config,
                job_spread=bars.job_spread,
                it_spread=bars.it_spread,
                optimal_gain=bars.tp_avg_best,
                worst_loss=bars.tp_avg_worst,
                slope=series.slope,
                bridged=series.mean_bridged_fraction,
            )
        )
    return numbers


def render(numbers: list[HeadlineNumbers]) -> str:
    """Measured-vs-paper table."""
    rows = []
    for n in numbers:
        paper = _PAPER[n.config]

        def fmt(value, reference, *, pct=True):
            measured = f"{value:.1%}" if pct else f"{value:.2f}"
            if reference is None:
                return f"{measured} (n/a)"
            ref = f"{reference:.0%}" if pct else f"{reference:.2f}"
            return f"{measured} (paper {ref})"

        rows.extend(
            [
                (n.config, "per-job variability", fmt(n.job_spread, paper["job_spread"])),
                (n.config, "inst-TP variability", fmt(n.it_spread, paper["it_spread"])),
                (n.config, "optimal vs FCFS", fmt(n.optimal_gain, paper["optimal_gain"])),
                (n.config, "worst vs FCFS", fmt(n.worst_loss, paper["worst_loss"])),
                (n.config, "Figure-2 slope", fmt(n.slope, paper["slope"], pct=False)),
                (n.config, "FCFS bridges", fmt(n.bridged, paper["bridged"])),
            ]
        )
    table = format_table(["config", "quantity", "measured (paper)"], rows)
    return (
        table
        + "\n\nThe reproduction targets shape, not absolute values: the "
        "scheduling headroom\nis a small fraction of the underlying "
        "variability on both machines."
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[HeadlineNumbers]:
    return compute_summary(context)


register(Experiment(
    name="summary",
    kind="analysis",
    title="Abstract — headline digest, measured vs paper",
    run=_registry_run,
    render=render,
))
