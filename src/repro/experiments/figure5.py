"""Figure 5: turnaround / utilization / empty fraction for 4 schedulers.

The latency experiment at loads 0.8, 0.9, 0.95 of the FCFS maximum
throughput, averaged over workloads.  The paper's pattern:

* SRPT wins turnaround at 0.8 and 0.9 but barely moves utilization or
  the empty fraction;
* at 0.95 the MAXTP scheduler has enough queued jobs to follow its
  optimal fractions, cutting turnaround by ~23% — far more than its 3%
  throughput gain — while also showing the lowest utilization and the
  highest empty fraction (the honest indicators of a real throughput
  improvement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, format_table, sample_workloads
from repro.microarch.rates import RateTable
from repro.queueing.experiment import run_latency_experiment
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Figure5Cell", "compute_figure5", "run", "render", "SCHEDULERS", "LOADS"]

SCHEDULERS: tuple[str, ...] = ("fcfs", "maxit", "srpt", "maxtp")
LOADS: tuple[float, ...] = (0.8, 0.9, 0.95)


@dataclass(frozen=True)
class Figure5Cell:
    """One (scheduler, load) cell, averaged over workloads.

    ``turnaround_vs_fcfs`` is the mean of per-workload ratios to the
    FCFS scheduler at the same load and seed (paired comparison).
    """

    scheduler: str
    load: float
    mean_turnaround: float
    turnaround_vs_fcfs: float
    utilization: float
    empty_fraction: float
    workloads: int


def compute_figure5(
    rates: RateTable,
    workloads: Sequence[Workload],
    *,
    schedulers: Sequence[str] = SCHEDULERS,
    loads: Sequence[float] = LOADS,
    n_jobs: int = 6_000,
    seed: int = 0,
) -> list[Figure5Cell]:
    """Run the latency experiment grid and average over workloads."""
    cells = []
    for load in loads:
        per_scheduler: dict[str, list] = {name: [] for name in schedulers}
        for workload in workloads:
            for name in schedulers:
                per_scheduler[name].append(
                    run_latency_experiment(
                        rates,
                        workload,
                        name,
                        load=load,
                        n_jobs=n_jobs,
                        seed=seed,
                    )
                )
        baseline = per_scheduler.get("fcfs")
        for name in schedulers:
            results = per_scheduler[name]
            n = len(results)
            if baseline is not None:
                ratios = [
                    r.mean_turnaround / b.mean_turnaround
                    for r, b in zip(results, baseline)
                ]
                vs_fcfs = sum(ratios) / n
            else:
                vs_fcfs = float("nan")
            cells.append(
                Figure5Cell(
                    scheduler=name,
                    load=load,
                    mean_turnaround=sum(r.mean_turnaround for r in results) / n,
                    turnaround_vs_fcfs=vs_fcfs,
                    utilization=sum(r.utilization for r in results) / n,
                    empty_fraction=sum(r.empty_fraction for r in results) / n,
                    workloads=n,
                )
            )
    return cells


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    max_workloads: int = 24,
    n_jobs: int = 6_000,
    seed: int = 0,
) -> list[Figure5Cell]:
    """Figure 5 on a deterministic workload subsample.

    The paper averages over all 495 workloads; the discrete-event grid
    (4 schedulers x 3 loads x workloads x thousands of jobs) is the
    expensive part of the reproduction, so the default samples 24
    workloads — enough for stable ordering of the schedulers.
    """
    workloads = sample_workloads(context.workloads, max_workloads, seed=seed)
    return compute_figure5(
        context.rates_for(config), workloads, n_jobs=n_jobs, seed=seed
    )


def render(cells: list[Figure5Cell]) -> str:
    """Text rendering of the three Figure-5 panels."""
    return format_table(
        ["load", "scheduler", "turnaround", "vs FCFS", "utilization",
         "empty fraction"],
        [
            (
                f"{c.load:.2f}",
                c.scheduler,
                f"{c.mean_turnaround:.3f}",
                f"{c.turnaround_vs_fcfs:.3f}",
                f"{c.utilization:.3f}",
                f"{c.empty_fraction:.4f}",
            )
            for c in cells
        ],
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[Figure5Cell]:
    return run(
        context,
        max_workloads=options.workloads(24),
        seed=options.seed_for("figure5"),
    )


register(Experiment(
    name="figure5",
    kind="figure",
    title="Fig. 5 — TT / utilization / empty fraction, 4 schedulers",
    run=_registry_run,
    render=render,
))
