"""Policy tournament: oracle rates vs. estimated rates, head to head.

Every queueing experiment so far hands the schedulers the *oracle*
coschedule rates — the exact per-type throughputs the microarch
simulator measured.  The paper's deployment story (Section VI) has no
such oracle: symbiosis must be estimated online from noisy progress
observations.  This experiment quantifies the *price of information*:
for each symbiosis-aware policy it runs every named scenario twice on
identical arrival streams — once with oracle rates, once with a
:class:`~repro.queueing.estimation.ThroughputEstimator` fed noisy
observations — and reports the throughput / latency / fairness
degradation as a function of the observation-noise level and the
measurement warm-up horizon.

Pairing is per seed: the oracle and estimated runs of a cell share the
exact arrival stream (same scenario seed), so every degradation number
is a paired difference, not a difference of independent samples.  The
zero-noise cells use the estimator's warm oracle prior and are pinned
bit-identical to the oracle runs (the differential harness enforces
the same identity per engine); cells with noise use the realistic
``single_run`` cold-start prior.

Summary rows aggregate each (policy, noise, warm-up) group: mean and
standard deviation of the paired throughput degradation, a paired
t-statistic, and the *sign stability* — the fraction of cells where
the oracle run is at least as good, i.e. how often information
actually pays.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.experiments.common import (
    ExperimentContext,
    format_table,
    sample_workloads,
    snapshot_rates,
)
from repro.experiments.registry import Experiment, RunOptions, register
from repro.microarch.rates import RateSource, infer_contexts
from repro.queueing.cluster import Cluster, ClusterMetrics
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.estimation import EstimationConfig
from repro.queueing.scenarios import Scenario, all_scenarios, get_scenario
from repro.queueing.schedulers import make_scheduler
from repro.queueing.sharding import parallel_map

__all__ = [
    "POLICIES",
    "NOISE_LEVELS",
    "WARMUP_FRACS",
    "TournamentCell",
    "SummaryRow",
    "run_tournament_cell",
    "compute_tournament",
    "run",
    "render",
]

#: The symbiosis-aware contenders: policy name -> (scheduler,
#: dispatcher).  Each consumes rates somewhere — in the per-machine
#: packing decision (MAXIT, SRPT) or in cluster-level routing
#: (the affinity dispatcher) — so each can lose when the rates lie.
POLICIES: dict[str, tuple[str, str]] = {
    "maxit": ("maxit", "round_robin"),
    "srpt": ("srpt", "round_robin"),
    "affinity": ("maxit", "affinity"),
}

#: Observation-noise levels (relative sigma of the multiplicative
#: model).  0.0 is the control: the estimator must reproduce the
#: oracle bit for bit.
NOISE_LEVELS: tuple[float, ...] = (0.0, 0.15, 0.4)

#: Measurement warm-up horizons as fractions of the expected run
#: duration; metrics before the horizon are discarded, so the longer
#: horizon scores the estimator after it has had time to converge.
WARMUP_FRACS: tuple[float, ...] = (0.0, 0.25)

#: Observations between estimator re-optimization rounds.
REOPT_OBSERVATIONS = 32


@dataclass(frozen=True)
class TournamentCell:
    """One paired (oracle, estimated) comparison.

    Attributes:
        scenario: scenario name.
        policy: tournament policy name (see :data:`POLICIES`).
        scheduler: per-machine scheduler of the policy.
        dispatcher: dispatch policy of the policy.
        noise: observation-noise sigma of the estimated run.
        warmup_frac: warm-up horizon as a fraction of the expected
            run duration (applies to both runs of the pair).
        rep: paired-replication index; oracle and estimated runs of
            the same ``rep`` share the exact arrival stream.
        prior: estimator cold-start prior used ("oracle" at zero
            noise, "single_run" otherwise).
        oracle_throughput / est_throughput: cluster work rate.
        tp_degradation: ``(oracle - est) / oracle`` (0.0 when the
            oracle throughput is 0).
        oracle_turnaround / est_turnaround: mean turnaround of
            completed jobs; ``None`` when nothing completed in the
            measurement window.
        turnaround_inflation: ``est / oracle - 1`` (``None`` when
            either side is undefined).
        oracle_fairness / est_fairness: min/max per-machine
            utilization (1.0 = even).
        fairness_delta: ``oracle - est`` (positive = estimates made
            the cluster less balanced).
        oracle_completed / est_completed: jobs completed.
        estimator: the estimated run's
            :meth:`~repro.queueing.estimation.ThroughputEstimator.stats_dict`.
    """

    scenario: str
    policy: str
    scheduler: str
    dispatcher: str
    noise: float
    warmup_frac: float
    rep: int
    prior: str
    oracle_throughput: float
    est_throughput: float
    tp_degradation: float
    oracle_turnaround: float | None
    est_turnaround: float | None
    turnaround_inflation: float | None
    oracle_fairness: float
    est_fairness: float
    fairness_delta: float
    oracle_completed: int
    est_completed: int
    estimator: dict | None


@dataclass(frozen=True)
class SummaryRow:
    """Aggregate of one (policy, noise, warm-up) tournament group.

    Attributes:
        policy / noise / warmup_frac: the group key.
        n_cells: paired comparisons aggregated.
        mean_tp_degradation / std_tp_degradation: paired throughput
            degradation statistics across the group's cells.
        t_stat: paired t-statistic of the degradation (``None`` when
            the group has fewer than two cells or zero variance —
            notably every zero-noise group, where all degradations
            are exactly 0.0).
        sign_stability: fraction of cells with degradation >= 0,
            i.e. how often the oracle is at least as good.
        mean_turnaround_inflation: mean of the defined turnaround
            inflations (``None`` if none are defined).
        mean_fairness_delta: mean oracle-minus-estimated fairness.
    """

    policy: str
    noise: float
    warmup_frac: float
    n_cells: int
    mean_tp_degradation: float
    std_tp_degradation: float
    t_stat: float | None
    sign_stability: float
    mean_turnaround_inflation: float | None
    mean_fairness_delta: float


def _fairness(metrics: ClusterMetrics) -> float:
    """Per-machine utilization balance: min/max across machines."""
    utils = [m.utilization for m in metrics.per_machine]
    top = max(utils)
    if top <= 0.0:
        return 1.0
    return min(utils) / top


def _pair_seed(base: int, name: str, rep: int) -> int:
    """Deterministic stream seed shared by both runs of a pair."""
    return (
        (base + 7919 * rep) * 1_000_003 + zlib.crc32(name.encode())
    ) % 2**31


def _run_once(
    rates: RateSource,
    workload: Workload,
    scenario: Scenario,
    scheduler: str,
    dispatcher: str,
    *,
    k: int,
    capacity: float,
    n_machines: int,
    n_jobs: int,
    stream_seed: int,
    warmup_frac: float,
    engine: str | None,
    rate_source: str,
    estimation: EstimationConfig | None,
) -> tuple[ClusterMetrics, dict | None]:
    """One cluster run of a tournament cell (oracle or estimated)."""
    mean_rate = (
        0.0
        if scenario.saturated
        else scenario.load * capacity / scenario.mean_size
    )
    jobs = scenario.build_jobs(
        workload.types, mean_rate=mean_rate, seed=stream_seed, n_jobs=n_jobs
    )
    duration = (
        n_jobs * scenario.mean_size / capacity
        if scenario.saturated
        else n_jobs / mean_rate
    )
    cluster = Cluster(
        rates,
        [
            make_scheduler(scheduler, rates, k, workload=workload)
            for _ in range(n_machines)
        ],
        make_dispatcher(
            dispatcher, rates=rates, workload=workload, contexts=k
        ),
    )
    metrics = cluster.run(
        jobs,
        warmup_time=warmup_frac * duration,
        stop_when_fewer_than=(
            n_machines * k if scenario.saturated else None
        ),
        keep_in_system=(
            scenario.backlog_per_machine if scenario.saturated else None
        ),
        engine=engine,
        rate_source=rate_source,
        estimation=estimation,
    )
    return metrics, cluster.last_estimator_stats


def run_tournament_cell(
    rates: RateSource,
    workload: Workload,
    scenario: Scenario,
    policy: str,
    noise: float,
    *,
    warmup_frac: float = 0.0,
    rep: int = 0,
    n_machines: int = 2,
    n_jobs: int = 240,
    seed: int = 0,
    contexts: int | None = None,
    capacity: float | None = None,
    engine: str | None = None,
    oracle: tuple[ClusterMetrics, float] | None = None,
) -> TournamentCell:
    """Run one paired (oracle, estimated) tournament comparison.

    Both runs consume the identical arrival stream (seeded by scenario
    name and ``rep``); only the rate source differs.  Zero-noise cells
    use the warm oracle prior — by construction they replay the oracle
    decisions bit for bit, so their degradation is exactly 0.0 — and
    noisy cells use the realistic ``single_run`` cold start.  Pass a
    precomputed ``oracle`` ``(metrics, fairness)`` pair to share one
    oracle run across the noise levels of a sweep.
    """
    scheduler, dispatcher = POLICIES[policy]
    k = infer_contexts(rates, contexts)
    if capacity is None:
        capacity = n_machines * optimal_throughput(
            rates, workload, contexts=k
        ).throughput
    stream_seed = _pair_seed(seed, scenario.name, rep)
    common = dict(
        k=k,
        capacity=capacity,
        n_machines=n_machines,
        n_jobs=n_jobs,
        stream_seed=stream_seed,
        warmup_frac=warmup_frac,
        engine=engine,
    )
    if oracle is None:
        oracle_metrics, _ = _run_once(
            rates, workload, scenario, scheduler, dispatcher,
            rate_source="oracle", estimation=None, **common,
        )
        oracle_fair = _fairness(oracle_metrics)
    else:
        oracle_metrics, oracle_fair = oracle
    prior = "oracle" if noise == 0.0 else "single_run"
    est_metrics, est_stats = _run_once(
        rates, workload, scenario, scheduler, dispatcher,
        rate_source="estimated",
        estimation=EstimationConfig(
            noise=noise,
            prior=prior,
            reopt_observations=REOPT_OBSERVATIONS,
            seed=stream_seed,
        ),
        **common,
    )
    est_fair = _fairness(est_metrics)

    o_tp, e_tp = oracle_metrics.throughput, est_metrics.throughput
    degradation = (o_tp - e_tp) / o_tp if o_tp > 0.0 else 0.0
    o_turn = (
        oracle_metrics.mean_turnaround if oracle_metrics.completed else None
    )
    e_turn = est_metrics.mean_turnaround if est_metrics.completed else None
    inflation = (
        e_turn / o_turn - 1.0
        if o_turn is not None and e_turn is not None and o_turn > 0.0
        else None
    )
    return TournamentCell(
        scenario=scenario.name,
        policy=policy,
        scheduler=scheduler,
        dispatcher=dispatcher,
        noise=noise,
        warmup_frac=warmup_frac,
        rep=rep,
        prior=prior,
        oracle_throughput=o_tp,
        est_throughput=e_tp,
        tp_degradation=degradation,
        oracle_turnaround=o_turn,
        est_turnaround=e_turn,
        turnaround_inflation=inflation,
        oracle_fairness=oracle_fair,
        est_fairness=est_fair,
        fairness_delta=oracle_fair - est_fair,
        oracle_completed=oracle_metrics.completed,
        est_completed=est_metrics.completed,
        estimator=est_stats,
    )


def _group_worker(payload: tuple) -> list[TournamentCell]:
    """All cells of one (scenario, policy) group (spawn-safe).

    Module-level so :func:`repro.queueing.sharding.parallel_map` can
    pickle it; the payload carries a
    :func:`~repro.experiments.common.snapshot_rates` table, so a
    worker computes the exact floats of an in-process run.  Grouping
    by (scenario, policy) keeps the oracle-run sharing inside one
    worker.
    """
    rates, workload, scenario_name, policy, kwargs = payload
    return _run_group(
        rates, workload, get_scenario(scenario_name), policy, **kwargs
    )


def _run_group(
    rates: RateSource,
    workload: Workload,
    scenario: Scenario,
    policy: str,
    *,
    noise_levels: Sequence[float],
    warmup_fracs: Sequence[float],
    n_seeds: int,
    n_machines: int,
    n_jobs: int,
    seed: int,
    contexts: int,
    capacity: float,
    engine: str | None,
) -> list[TournamentCell]:
    """Every cell of one (scenario, policy) group.

    The oracle run of a (warmup, rep) pair is shared across the noise
    levels — it does not depend on the noise — so a group costs
    ``warmups x reps x (1 + len(noise_levels))`` runs, not
    ``... x 2 x len(noise_levels)``.
    """
    scheduler, dispatcher = POLICIES[policy]
    cells: list[TournamentCell] = []
    for warmup_frac in warmup_fracs:
        for rep in range(n_seeds):
            oracle_metrics, _ = _run_once(
                rates, workload, scenario, scheduler, dispatcher,
                k=contexts,
                capacity=capacity,
                n_machines=n_machines,
                n_jobs=n_jobs,
                stream_seed=_pair_seed(seed, scenario.name, rep),
                warmup_frac=warmup_frac,
                engine=engine,
                rate_source="oracle",
                estimation=None,
            )
            oracle = (oracle_metrics, _fairness(oracle_metrics))
            for noise in noise_levels:
                cells.append(run_tournament_cell(
                    rates, workload, scenario, policy, noise,
                    warmup_frac=warmup_frac,
                    rep=rep,
                    n_machines=n_machines,
                    n_jobs=n_jobs,
                    seed=seed,
                    contexts=contexts,
                    capacity=capacity,
                    engine=engine,
                    oracle=oracle,
                ))
    return cells


def _summarize(
    cells: Sequence[TournamentCell],
    policies: Sequence[str],
    noise_levels: Sequence[float],
    warmup_fracs: Sequence[float],
) -> list[SummaryRow]:
    """One row per (policy, noise, warm-up) group."""
    rows: list[SummaryRow] = []
    for policy in policies:
        for noise in noise_levels:
            for warmup_frac in warmup_fracs:
                group = [
                    c for c in cells
                    if c.policy == policy
                    and c.noise == noise
                    and c.warmup_frac == warmup_frac
                ]
                if not group:
                    continue
                degradations = [c.tp_degradation for c in group]
                n = len(degradations)
                mean = sum(degradations) / n
                var = (
                    sum((d - mean) ** 2 for d in degradations) / (n - 1)
                    if n > 1
                    else 0.0
                )
                std = math.sqrt(var)
                t_stat = (
                    mean / (std / math.sqrt(n)) if n > 1 and std > 0.0
                    else None
                )
                inflations = [
                    c.turnaround_inflation
                    for c in group
                    if c.turnaround_inflation is not None
                ]
                rows.append(SummaryRow(
                    policy=policy,
                    noise=noise,
                    warmup_frac=warmup_frac,
                    n_cells=n,
                    mean_tp_degradation=mean,
                    std_tp_degradation=std,
                    t_stat=t_stat,
                    sign_stability=(
                        sum(1 for d in degradations if d >= 0.0) / n
                    ),
                    mean_turnaround_inflation=(
                        sum(inflations) / len(inflations)
                        if inflations
                        else None
                    ),
                    mean_fairness_delta=(
                        sum(c.fairness_delta for c in group) / n
                    ),
                ))
    return rows


def compute_tournament(
    rates: RateSource,
    workload: Workload,
    *,
    scenarios: Sequence[Scenario] | None = None,
    policies: Sequence[str] | None = None,
    noise_levels: Sequence[float] = NOISE_LEVELS,
    warmup_fracs: Sequence[float] = WARMUP_FRACS,
    n_seeds: int = 2,
    n_machines: int = 2,
    n_jobs: int = 240,
    seed: int = 0,
    contexts: int | None = None,
    engine: str | None = None,
    jobs: int = 1,
) -> dict:
    """The full tournament grid on one workload.

    Returns a JSON-ready payload: the grid axes, every paired cell,
    and the per-(policy, noise, warm-up) summary rows.  ``jobs > 1``
    fans the independent (scenario, policy) groups out over worker
    processes (cells keep grid order and every float matches a serial
    run — workers receive a frozen :func:`snapshot_rates` table).
    """
    k = infer_contexts(rates, contexts)
    capacity = n_machines * optimal_throughput(
        rates, workload, contexts=k
    ).throughput
    scenario_list = list(
        scenarios if scenarios is not None else all_scenarios()
    )
    policy_list = list(policies if policies is not None else POLICIES)
    group_kwargs = dict(
        noise_levels=tuple(noise_levels),
        warmup_fracs=tuple(warmup_fracs),
        n_seeds=n_seeds,
        n_machines=n_machines,
        n_jobs=n_jobs,
        seed=seed,
        contexts=k,
        capacity=capacity,
        engine=engine,
    )
    groups = [
        (scenario, policy)
        for scenario in scenario_list
        for policy in policy_list
    ]
    if jobs > 1 and len(groups) > 1:
        frozen = snapshot_rates(rates, workload.types, k)
        payloads = [
            (frozen, workload, scenario.name, policy, group_kwargs)
            for scenario, policy in groups
        ]
        cells = [
            cell
            for group in parallel_map(_group_worker, payloads, jobs)
            for cell in group
        ]
    else:
        cells = [
            cell
            for scenario, policy in groups
            for cell in _run_group(
                rates, workload, scenario, policy, **group_kwargs
            )
        ]
    return {
        "policies": {p: POLICIES[p] for p in policy_list},
        "scenarios": [s.name for s in scenario_list],
        "noise_levels": list(noise_levels),
        "warmup_fracs": list(warmup_fracs),
        "n_seeds": n_seeds,
        "n_machines": n_machines,
        "n_jobs": n_jobs,
        "cells": cells,
        "summary": _summarize(
            cells, policy_list, noise_levels, warmup_fracs
        ),
    }


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    scenarios: Sequence[str] | None = None,
    noise_levels: Sequence[float] = NOISE_LEVELS,
    warmup_fracs: Sequence[float] = WARMUP_FRACS,
    n_seeds: int = 2,
    n_machines: int = 2,
    n_jobs: int = 240,
    seed: int = 0,
    jobs: int = 1,
) -> dict:
    """The tournament on one deterministically sampled workload."""
    workload = sample_workloads(context.workloads, 1, seed=seed)[0]
    scenario_objs = (
        [get_scenario(name) for name in scenarios]
        if scenarios is not None
        else None
    )
    return compute_tournament(
        context.rates_for(config),
        workload,
        scenarios=scenario_objs,
        noise_levels=noise_levels,
        warmup_fracs=warmup_fracs,
        n_seeds=n_seeds,
        n_machines=n_machines,
        n_jobs=n_jobs,
        seed=seed,
        jobs=jobs,
    )


def render(result: Mapping) -> str:
    """Summary table + noise/degradation ascii scatter."""
    from repro.util.asciiplot import scatter

    summary: Sequence = result["summary"]
    cells: Sequence = result["cells"]
    if not summary:
        return "no tournament cells"

    def field(row, name):
        return getattr(row, name) if hasattr(row, name) else row[name]

    def fmt(value, spec):
        return format(value, spec) if value is not None else "n/a"

    rows = [
        (
            field(r, "policy"),
            f"{field(r, 'noise'):.2f}",
            f"{field(r, 'warmup_frac'):.2f}",
            str(field(r, "n_cells")),
            f"{field(r, 'mean_tp_degradation'):+.2%}",
            f"{field(r, 'std_tp_degradation'):.2%}",
            fmt(field(r, "t_stat"), "+.2f"),
            f"{field(r, 'sign_stability'):.0%}",
            fmt(field(r, "mean_turnaround_inflation"), "+.1%"),
            f"{field(r, 'mean_fairness_delta'):+.3f}",
        )
        for r in summary
    ]
    table = format_table(
        [
            "policy",
            "noise",
            "warmup",
            "cells",
            "dTP mean",
            "dTP std",
            "t",
            "sign+",
            "dTurn",
            "dFair",
        ],
        rows,
    )

    # Mean degradation vs noise, one glyph per policy (warm-ups and
    # reps pooled): the price-of-information curve.
    policies = list(result["policies"])
    curves: dict[str, tuple[list[float], list[float]]] = {}
    for policy in policies:
        xs, ys = [], []
        for noise in result["noise_levels"]:
            group = [
                field(c, "tp_degradation")
                for c in cells
                if field(c, "policy") == policy
                and field(c, "noise") == noise
            ]
            if group:
                xs.append(noise)
                ys.append(100.0 * sum(group) / len(group))
        curves[policy] = (xs, ys)
    glyphs = {"maxit": "m", "srpt": "s", "affinity": "a"}
    first = policies[0]
    extra = {
        glyphs.get(p, p[0]): curves[p] for p in policies[1:] if curves[p][0]
    }
    plot = scatter(
        curves[first][0],
        curves[first][1],
        marker=glyphs.get(first, first[0]),
        x_label="observation noise (sigma)",
        y_label="mean TP degradation (%)",
        extra=extra,
    )
    legend = ", ".join(
        f"{glyphs.get(p, p[0])}={p}" for p in policies
    )
    zero = [
        field(c, "tp_degradation")
        for c in cells
        if field(c, "noise") == 0.0
    ]
    pinned = (
        "every zero-noise cell is bit-identical to its oracle twin"
        if zero and all(d == 0.0 for d in zero)
        else "WARNING: zero-noise cells deviate from oracle"
    )
    return (
        table
        + "\n\n"
        + plot
        + f"\n  {legend}\n\n"
        + f"{len(cells)} paired cells over {len(result['scenarios'])} "
        f"scenarios; {pinned}."
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> dict:
    if options.quick:
        return run(
            context,
            scenarios=["baseline_poisson", "skewed_types"],
            noise_levels=(0.0, 0.4),
            warmup_fracs=(0.0,),
            n_seeds=1,
            n_jobs=120,
            seed=options.seed_for("policy_tournament"),
            jobs=options.jobs,
        )
    return run(
        context,
        seed=options.seed_for("policy_tournament"),
        jobs=options.jobs,
    )


register(Experiment(
    name="policy_tournament",
    kind="analysis",
    title="Policy tournament — oracle vs. estimated rates, price of "
    "information",
    run=_registry_run,
    render=render,
))
