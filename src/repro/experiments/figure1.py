"""Figure 1: variability of per-job IPC, instantaneous TP, average TP.

For each configuration the paper shows three bars (average and extreme
swings relative to a zero line):

1. per-job IPC across coschedules (zero line = mean IPC);
2. per-coschedule instantaneous throughput (zero line = mean it(s));
3. average throughput across schedulers (zero line = FCFS; positive =
   optimal scheduler, negative = worst scheduler).

Headline paper numbers for the SMT configuration: +23%/-14% average
per-job swing (37% spread), +35%/-35% instantaneous-TP swing (69%
spread), and only +3%/-9% average-TP swing (12% spread).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.variability import WorkloadVariability, workload_variability
from repro.experiments.common import ExperimentContext, format_table
from repro.microarch.rates import RateTable
from repro.util.asciiplot import hbar
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Figure1Bars", "compute_figure1", "run", "render"]


@dataclass(frozen=True)
class Figure1Bars:
    """All Figure-1 bar heights for one machine configuration."""

    config: str
    job_avg_max: float
    job_avg_min: float
    job_extreme_max: float
    job_extreme_min: float
    job_spread: float
    it_avg_max: float
    it_avg_min: float
    it_extreme_max: float
    it_extreme_min: float
    it_spread: float
    tp_avg_best: float
    tp_avg_worst: float
    tp_extreme_best: float
    tp_extreme_worst: float
    tp_spread: float


def compute_figure1(
    rates: RateTable, workloads, *, config: str
) -> tuple[Figure1Bars, list[WorkloadVariability]]:
    """Aggregate the Figure-1 bars over the given workloads."""
    reports = [workload_variability(rates, w) for w in workloads]
    n = len(reports)

    job_maxes = [v.relative_max for r in reports for v in r.job_variations.values()]
    job_mins = [v.relative_min for r in reports for v in r.job_variations.values()]

    bars = Figure1Bars(
        config=config,
        job_avg_max=sum(r.job_relative_max for r in reports) / n,
        job_avg_min=sum(r.job_relative_min for r in reports) / n,
        job_extreme_max=max(job_maxes),
        job_extreme_min=min(job_mins),
        job_spread=sum(r.job_spread for r in reports) / n,
        it_avg_max=sum(r.inst_tp_relative_max for r in reports) / n,
        it_avg_min=sum(r.inst_tp_relative_min for r in reports) / n,
        it_extreme_max=max(r.inst_tp_relative_max for r in reports),
        it_extreme_min=min(r.inst_tp_relative_min for r in reports),
        it_spread=sum(r.inst_tp_spread for r in reports) / n,
        tp_avg_best=sum(r.avg_tp_best for r in reports) / n,
        tp_avg_worst=sum(r.avg_tp_worst for r in reports) / n,
        tp_extreme_best=max(r.avg_tp_best for r in reports),
        tp_extreme_worst=min(r.avg_tp_worst for r in reports),
        tp_spread=sum(r.avg_tp_spread for r in reports) / n,
    )
    return bars, reports


def run(context: ExperimentContext) -> list[Figure1Bars]:
    """Compute Figure 1 for both machine configurations."""
    return [
        compute_figure1(context.smt_rates, context.workloads, config="smt")[0],
        compute_figure1(context.quad_rates, context.workloads, config="quad")[0],
    ]


def render(bars_list: list[Figure1Bars]) -> str:
    """Text rendering of the Figure-1 bars."""
    rows = []
    for b in bars_list:
        rows.append((b.config, "per-job IPC",
                     f"+{b.job_avg_max:.1%}", f"{b.job_avg_min:.1%}",
                     f"+{b.job_extreme_max:.1%}", f"{b.job_extreme_min:.1%}",
                     f"{b.job_spread:.1%}"))
        rows.append((b.config, "instantaneous TP",
                     f"+{b.it_avg_max:.1%}", f"{b.it_avg_min:.1%}",
                     f"+{b.it_extreme_max:.1%}", f"{b.it_extreme_min:.1%}",
                     f"{b.it_spread:.1%}"))
        rows.append((b.config, "average TP",
                     f"+{b.tp_avg_best:.1%}", f"{b.tp_avg_worst:.1%}",
                     f"+{b.tp_extreme_best:.1%}", f"{b.tp_extreme_worst:.1%}",
                     f"{b.tp_spread:.1%}"))
    table = format_table(
        ["config", "metric", "avg best", "avg worst", "max best",
         "min worst", "variability"],
        rows,
    )
    charts = []
    for b in bars_list:
        charts.append(f"\n{b.config}: average swings relative to the zero line")
        charts.append(
            hbar(
                [
                    "per-job IPC (best)",
                    "per-job IPC (worst)",
                    "inst. TP (best)",
                    "inst. TP (worst)",
                    "avg TP (optimal)",
                    "avg TP (worst)",
                ],
                [
                    b.job_avg_max,
                    b.job_avg_min,
                    b.it_avg_max,
                    b.it_avg_min,
                    b.tp_avg_best,
                    b.tp_avg_worst,
                ],
            )
        )
    return table + "\n" + "\n".join(charts)


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[Figure1Bars]:
    return run(context)


register(Experiment(
    name="figure1",
    kind="figure",
    title="Fig. 1 — IPC / inst-TP / avg-TP variability bars",
    run=_registry_run,
    render=render,
))
