"""Dynamic validation of the Section III-D multi-machine reduction.

The paper claims symbiotic scheduling for M identical machines reduces
to the single-machine problem.  `repro.core.multimachine` verifies
this *analytically* (the joint LP gains nothing over M copies of the
single-machine optimum); this experiment verifies it *dynamically*: a
simulated M-machine cluster (round-robin dispatch composed with a
symbiosis-aware per-machine scheduler, saturated backlog) must achieve
the same throughput as

* M independent single-machine simulations, and
* the joint multi-machine LP optimum,

within a small tolerance.  Falling short of the independent machines
would mean the cluster composition loses throughput; the joint LP
bounds the throughput of any equal-work schedule, though the measured
window can overshoot it by a fraction of a percent (the drain-tail cut
of ``stop_when_fewer_than`` leaves a slightly non-equal work mix in
the window) — hence the two-sided tolerance on both comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.multimachine import (
    joint_optimal_throughput,
    reduced_optimal_throughput,
)
from repro.core.workload import Workload
from repro.experiments.common import (
    ExperimentContext,
    format_table,
    sample_workloads,
    snapshot_rates,
)
from repro.experiments.registry import Experiment, RunOptions, register
from repro.microarch.rates import RateSource, infer_contexts
from repro.queueing.cluster import Cluster
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.engine import run_system
from repro.queueing.job import Job
from repro.queueing.schedulers import make_scheduler
from repro.queueing.sharding import parallel_map
from repro.util.rng import make_rng

__all__ = [
    "ClusterComparison",
    "balanced_saturated_jobs",
    "compute_cluster",
    "run",
    "render",
]


def balanced_saturated_jobs(
    types: Sequence[str], n_jobs: int, *, seed: int = 0
) -> list[Job]:
    """A saturated backlog with *exactly* equal work per type.

    Each type appears ``n_jobs / len(types)`` times with unit size, in
    seeded shuffled order — the Section III-D equal-work assumption
    materialized.  A uniformly random type/size stream satisfies equal
    work only in expectation, and its sampling noise pushes short
    saturated measurements percent-scale past the LP optimum; with the
    balanced pool only boundary effects (the drain-tail cut) remain, so
    measurements track the LP to a fraction of a percent.
    """
    per_type, remainder = divmod(n_jobs, len(types))
    if remainder:
        raise ValueError(
            f"n_jobs={n_jobs} must be divisible by the {len(types)} types"
        )
    pool = [t for t in types for _ in range(per_type)]
    make_rng(seed).shuffle(pool)
    return [
        Job(job_id=i, job_type=t, size=1.0, arrival_time=0.0)
        for i, t in enumerate(pool)
    ]


@dataclass(frozen=True)
class ClusterComparison:
    """One workload's cluster-vs-reduction throughput comparison.

    Attributes:
        workload_label: the workload.
        n_machines: cluster size M.
        scheduler: per-machine scheduling policy.
        dispatcher: cluster-level dispatch policy.
        joint_lp_throughput: joint M-machine LP optimum (total WIPC).
        reduced_lp_throughput: M x the single-machine LP optimum.
        cluster_throughput: simulated M-machine cluster throughput.
        independent_throughput: sum of M independent single-machine
            simulations (distinct arrival seeds).
        tolerance: relative tolerance used for the verdict.
        memo_stats: the cluster run's rate-memo hit/miss counters and
            layer sizes (see
            :meth:`repro.queueing.ratememo.RunRateMemo.stats_dict`) —
            cache efficacy, surfaced into runner JSON and renders.
    """

    workload_label: str
    n_machines: int
    scheduler: str
    dispatcher: str
    joint_lp_throughput: float
    reduced_lp_throughput: float
    cluster_throughput: float
    independent_throughput: float
    tolerance: float
    memo_stats: dict | None = None

    @property
    def cluster_vs_independent(self) -> float:
        """Cluster throughput over M independent machines."""
        return self.cluster_throughput / self.independent_throughput

    @property
    def cluster_vs_joint_lp(self) -> float:
        """Cluster throughput over the joint LP optimum."""
        return self.cluster_throughput / self.joint_lp_throughput

    @property
    def within_tolerance(self) -> bool:
        """True when the simulated cluster matches both references."""
        return (
            abs(self.cluster_vs_independent - 1.0) <= self.tolerance
            and abs(self.cluster_vs_joint_lp - 1.0) <= self.tolerance
        )


def _compare_workload(payload: tuple) -> ClusterComparison:
    """One workload's full comparison from a pure-data payload.

    Module-level so :func:`repro.queueing.sharding.parallel_map` can
    pickle it for the ``jobs`` fan-out; the serial path calls it too,
    so both paths run the identical code.
    """
    rates, workload, p = payload
    k = p["contexts"]
    n_machines = p["n_machines"]
    joint = joint_optimal_throughput(
        rates, workload, n_machines, contexts=k
    )
    reduced = reduced_optimal_throughput(
        rates, workload, n_machines, contexts=k
    )

    schedulers = [
        make_scheduler(p["scheduler"], rates, k, workload=workload)
        for _ in range(n_machines)
    ]
    cluster = Cluster(
        rates,
        schedulers,
        make_dispatcher(
            p["dispatcher"], rates=rates, workload=workload, contexts=k
        ),
    )
    cluster_metrics = cluster.run(
        balanced_saturated_jobs(
            workload.types,
            n_machines * p["jobs_per_machine"],
            seed=p["seed"],
        ),
        stop_when_fewer_than=n_machines * k,
        keep_in_system=p["backlog_per_machine"],
    )

    independent = sum(
        run_system(
            rates,
            make_scheduler(p["scheduler"], rates, k, workload=workload),
            balanced_saturated_jobs(
                workload.types,
                p["jobs_per_machine"],
                seed=p["seed"] + machine + 1,
            ),
            stop_when_fewer_than=k,
            keep_in_system=p["backlog_per_machine"],
        ).throughput
        for machine in range(n_machines)
    )

    return ClusterComparison(
        workload_label=workload.label(),
        n_machines=n_machines,
        scheduler=p["scheduler"],
        dispatcher=p["dispatcher"],
        joint_lp_throughput=joint.throughput,
        reduced_lp_throughput=reduced.throughput,
        cluster_throughput=cluster_metrics.throughput,
        independent_throughput=independent,
        tolerance=p["tolerance"],
        memo_stats=cluster.last_memo_stats,
    )


def compute_cluster(
    rates: RateSource,
    workloads: Sequence[Workload],
    *,
    n_machines: int = 3,
    scheduler: str = "maxtp",
    dispatcher: str = "round_robin",
    jobs_per_machine: int = 400,
    backlog_per_machine: int = 12,
    tolerance: float = 0.05,
    seed: int = 0,
    contexts: int | None = None,
    jobs: int = 1,
) -> list[ClusterComparison]:
    """Compare the simulated cluster against both reduction references.

    Every workload gets three measurements: the joint M-machine LP
    (with :func:`reduced_optimal_throughput` as a sanity cross-check),
    a saturated M-machine cluster simulation, and M independent
    saturated single-machine simulations whose throughputs sum.

    Workload cells share nothing, so ``jobs > 1`` fans them out over
    worker processes (each receives a frozen
    :func:`~repro.experiments.common.snapshot_rates` table covering its
    workload, keeping results bit-identical to a serial run).
    """
    k = infer_contexts(rates, contexts)
    params = {
        "contexts": k,
        "n_machines": n_machines,
        "scheduler": scheduler,
        "dispatcher": dispatcher,
        "jobs_per_machine": jobs_per_machine,
        "backlog_per_machine": backlog_per_machine,
        "tolerance": tolerance,
        "seed": seed,
    }
    if jobs > 1 and len(workloads) > 1:
        payloads = [
            (snapshot_rates(rates, w.types, k), w, params)
            for w in workloads
        ]
        return parallel_map(_compare_workload, payloads, jobs)
    return [_compare_workload((rates, w, params)) for w in workloads]


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    max_workloads: int = 2,
    n_machines: int = 3,
    jobs_per_machine: int = 400,
    seed: int = 0,
    jobs: int = 1,
) -> list[ClusterComparison]:
    """The cluster validation on a deterministic workload subsample."""
    workloads = sample_workloads(context.workloads, max_workloads, seed=seed)
    return compute_cluster(
        context.rates_for(config),
        workloads,
        n_machines=n_machines,
        jobs_per_machine=jobs_per_machine,
        seed=seed,
        jobs=jobs,
    )


def render(comparisons: list[ClusterComparison]) -> str:
    """Text rendering of the cluster-vs-reduction comparison."""
    if not comparisons:
        return "no workloads compared"
    m = comparisons[0].n_machines
    table = format_table(
        [
            "workload",
            "joint LP",
            "M x 1-machine LP",
            "cluster sim",
            "M x 1-machine sim",
            "vs sim",
            "vs LP",
        ],
        [
            (
                c.workload_label,
                f"{c.joint_lp_throughput:.4f}",
                f"{c.reduced_lp_throughput:.4f}",
                f"{c.cluster_throughput:.4f}",
                f"{c.independent_throughput:.4f}",
                f"{c.cluster_vs_independent:.3f}",
                f"{c.cluster_vs_joint_lp:.3f}",
            )
            for c in comparisons
        ],
    )
    ok = sum(1 for c in comparisons if c.within_tolerance)
    tolerance = comparisons[0].tolerance
    verdict = (
        f"\n\nSection III-D reduction, dynamically: {ok}/{len(comparisons)} "
        f"workloads have the simulated {m}-machine cluster within "
        f"{tolerance:.0%} of both {m} independent single-machine runs and "
        "the joint multi-machine LP optimum."
    )
    memo_lines = []
    for c in comparisons:
        stats = c.memo_stats
        if stats:
            sizes = stats.get("sizes", {})
            memo_lines.append(
                f"  {c.workload_label}: {stats.get('hits', 0)} hits / "
                f"{stats.get('misses', 0)} misses "
                f"({float(stats.get('hit_rate', 0.0)):.1%} hit rate), "
                f"{sizes.get('probe_sets', 0)} probe sets, "
                f"{sizes.get('interned_types', 0)} interned types"
            )
    if memo_lines:
        verdict += "\n\nrun-memo cache efficacy:\n" + "\n".join(memo_lines)
    return table + verdict


def _registry_run(
    context: ExperimentContext, options: RunOptions
) -> list[ClusterComparison]:
    return run(
        context,
        max_workloads=options.workloads(2),
        jobs_per_machine=160 if options.quick else 400,
        seed=options.seed_for("cluster_exp"),
        jobs=options.jobs,
    )


register(Experiment(
    name="cluster_exp",
    kind="analysis",
    title="Sec. III-D — simulated M-machine cluster vs the reduction",
    run=_registry_run,
    render=render,
))
