"""Scenario sweep: every workload scenario × every dispatch policy.

The paper's queueing experiments probe one operating point (Poisson
arrivals, exponential sizes).  This experiment runs the full scenario
registry (:mod:`repro.queueing.scenarios` — bursty MMPP, diurnal,
batch storms, heavy-tailed and bimodal sizes, skewed types, saturation,
trace replay) against the three cluster dispatchers (round-robin, JSQ,
symbiosis-affinity) on the multi-machine simulator, and reports
throughput / latency / fairness — each row a delta against round-robin
on the same traffic.

Offered load is normalized per scenario: the mean *job* arrival rate is
``load × M × single-machine LP throughput ÷ mean job size``, so every
non-saturated scenario offers the same fraction of cluster capacity in
work units regardless of its size law.  Fairness is per-machine
utilization balance (min/max across machines, 1.0 = perfectly even) —
the dispatcher-level quantity the cluster metrics expose directly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.experiments.common import (
    ExperimentContext,
    format_table,
    sample_workloads,
    snapshot_rates,
)
from repro.experiments.registry import Experiment, RunOptions, register
from repro.microarch.rates import RateSource, infer_contexts
from repro.queueing.cluster import Cluster, ClusterMetrics
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.scenarios import Scenario, all_scenarios
from repro.queueing.schedulers import make_scheduler
from repro.queueing.sharding import (
    parallel_map,
    plan_boundaries,
    run_sharded,
)

__all__ = [
    "DISPATCHERS",
    "ScenarioOutcome",
    "snapshot_rates",
    "compute_scenario_sweep",
    "run",
    "render",
]

#: The dispatch policies every scenario is swept against; the first is
#: the baseline the delta columns compare to.
DISPATCHERS: tuple[str, ...] = ("round_robin", "jsq", "affinity")


@dataclass(frozen=True)
class ScenarioOutcome:
    """One (scenario, dispatcher) cell of the sweep.

    Attributes:
        scenario: scenario name.
        dispatcher: dispatch policy.
        n_machines: cluster size M.
        n_jobs: jobs generated for the run.
        mean_rate: offered mean job rate (0 for saturated scenarios).
        throughput: cluster work rate (WIPC) over the run.
        mean_turnaround: average turnaround of completed jobs.
        utilization: average busy contexts, cluster-wide.
        empty_fraction: mean per-machine fraction of empty time.
        fairness: min/max per-machine utilization (1.0 = even).
        completed: jobs completed inside the measurement window.
        engine: engine that advanced the run (all three are
            bit-identical; this is provenance, not a result axis).
        shards: time-slice shards the run was split into (provenance —
            every value yields bit-identical metrics).
        memo_stats: the run's ``RunRateMemo`` hit/miss counters.
        engine_stats: compiled-engine counters (fusion count, batch
            sizes, probe vectorization hit rate); ``None`` on the
            legacy/fast engines.
    """

    scenario: str
    dispatcher: str
    n_machines: int
    n_jobs: int
    mean_rate: float
    throughput: float
    mean_turnaround: float
    utilization: float
    empty_fraction: float
    fairness: float
    completed: int
    engine: str = "fast"
    shards: int = 1
    memo_stats: dict | None = None
    engine_stats: dict | None = None


def _fairness(metrics: ClusterMetrics) -> float:
    """Per-machine utilization balance: min/max across machines."""
    utils = [m.utilization for m in metrics.per_machine]
    top = max(utils)
    if top <= 0.0:
        return 1.0
    return min(utils) / top


def _scenario_seed(base: int, name: str) -> int:
    """Deterministic per-scenario seed (stable across sweep order)."""
    return (base * 1_000_003 + zlib.crc32(name.encode())) % 2**31


def run_scenario(
    rates: RateSource,
    workload: Workload,
    scenario: Scenario,
    dispatcher: str,
    *,
    n_machines: int = 3,
    scheduler: str = "maxtp",
    n_jobs: int | None = None,
    seed: int = 0,
    contexts: int | None = None,
    capacity: float | None = None,
    engine: str | None = None,
    backend: str | None = None,
    shards: int = 1,
    checkpoint_dir: Path | str | None = None,
) -> ScenarioOutcome:
    """Run one (scenario, dispatcher) cell on the cluster simulator.

    ``capacity`` is the cluster's LP work rate (M × single-machine
    optimum); pass it when sweeping to amortize the LP solve, else it
    is computed here.  ``engine``/``backend`` select the event loop
    exactly as in :meth:`Cluster.run` (all engines are bit-identical;
    the compiled one additionally reports its fusion/batching/
    vectorization counters in the outcome).

    ``shards > 1`` splits the run into deterministic time-slice
    segments (boundaries from the scenario's expected duration —
    stream length over mean rate, or backlog work over cluster
    capacity when saturated); ``checkpoint_dir`` additionally writes a
    crash-safe checkpoint after every shard and resumes from one left
    by a killed run.  Both change only where the run can pause:
    metrics are bit-identical to the unsharded cell.
    """
    k = infer_contexts(rates, contexts)
    if capacity is None:
        capacity = n_machines * optimal_throughput(
            rates, workload, contexts=k
        ).throughput
    count = scenario.n_jobs if n_jobs is None else n_jobs
    mean_rate = (
        0.0
        if scenario.saturated
        else scenario.load * capacity / scenario.mean_size
    )
    cell_seed = _scenario_seed(seed, scenario.name)

    def build_stream():
        return scenario.build_jobs(
            workload.types,
            mean_rate=mean_rate,
            seed=cell_seed,
            n_jobs=count,
        )

    schedulers = [
        make_scheduler(scheduler, rates, k, workload=workload)
        for _ in range(n_machines)
    ]
    cluster = Cluster(
        rates,
        schedulers,
        make_dispatcher(
            dispatcher, rates=rates, workload=workload, contexts=k
        ),
    )
    stop_when_fewer_than = n_machines * k if scenario.saturated else None
    keep_in_system = (
        scenario.backlog_per_machine if scenario.saturated else None
    )
    if shards > 1 or checkpoint_dir is not None:
        # Expected run length: offered jobs over the offered rate, or —
        # saturated — the backlog's work over the cluster's work rate.
        # Only checkpoint spacing depends on this estimate.
        duration = (
            count * scenario.mean_size / capacity
            if scenario.saturated
            else count / mean_rate
        )
        if checkpoint_dir is not None:
            Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
        sharded = run_sharded(
            cluster,
            build_stream,
            boundaries=plan_boundaries(max(shards, 1), duration),
            checkpoint_dir=checkpoint_dir,
            stop_when_fewer_than=stop_when_fewer_than,
            keep_in_system=keep_in_system,
            engine=engine,
            backend=backend,
        )
        metrics = sharded.metrics
    else:
        metrics = cluster.run(
            build_stream(),
            stop_when_fewer_than=stop_when_fewer_than,
            keep_in_system=keep_in_system,
            engine=engine,
            backend=backend,
        )
    return ScenarioOutcome(
        scenario=scenario.name,
        dispatcher=dispatcher,
        n_machines=n_machines,
        n_jobs=count,
        mean_rate=mean_rate,
        throughput=metrics.throughput,
        mean_turnaround=(
            metrics.mean_turnaround if metrics.completed else float("nan")
        ),
        utilization=metrics.utilization,
        empty_fraction=metrics.empty_fraction,
        fairness=_fairness(metrics),
        completed=metrics.completed,
        engine=engine or "fast",
        shards=max(shards, 1),
        memo_stats=cluster.last_memo_stats,
        engine_stats=cluster.last_engine_stats,
    )


def _cell_worker(payload: tuple) -> ScenarioOutcome:
    """Run one sweep cell from a pure-data payload (spawn-safe).

    Module-level so :func:`repro.queueing.sharding.parallel_map` can
    pickle it; the payload carries a :func:`snapshot_rates` table, so
    a worker computes the exact floats of an in-process run.
    """
    rates, workload, scenario, dispatcher, kwargs = payload
    return run_scenario(rates, workload, scenario, dispatcher, **kwargs)


def compute_scenario_sweep(
    rates: RateSource,
    workload: Workload,
    *,
    scenarios: Sequence[Scenario] | None = None,
    dispatchers: Sequence[str] = DISPATCHERS,
    n_machines: int = 3,
    scheduler: str = "maxtp",
    n_jobs: int | None = None,
    seed: int = 0,
    contexts: int | None = None,
    engine: str | None = "compiled",
    backend: str | None = None,
    jobs: int = 1,
    shards: int = 1,
    checkpoint_dir: Path | str | None = None,
) -> list[ScenarioOutcome]:
    """Sweep every scenario against every dispatcher on one workload.

    Defaults to the compiled engine (bit-identical to the others) so
    every cell's JSON carries the engine counters alongside the memo
    stats; pass ``engine=None`` for the plain fast path.

    The (scenario, dispatcher) cells share nothing, so ``jobs > 1``
    fans them out over worker processes (results keep sweep order and
    every float is identical to a serial run — workers receive a
    frozen :func:`snapshot_rates` table).  ``shards`` /
    ``checkpoint_dir`` apply per cell (each cell checkpoints in its own
    ``scenario__dispatcher`` subdirectory, so a killed sweep resumes
    every unfinished cell from its last completed shard).
    """
    k = infer_contexts(rates, contexts)
    capacity = n_machines * optimal_throughput(
        rates, workload, contexts=k
    ).throughput
    cells = [
        (scenario, dispatcher)
        for scenario in (
            scenarios if scenarios is not None else all_scenarios()
        )
        for dispatcher in dispatchers
    ]

    def cell_kwargs(scenario: Scenario, dispatcher: str) -> dict:
        return {
            "n_machines": n_machines,
            "scheduler": scheduler,
            "n_jobs": n_jobs,
            "seed": seed,
            "contexts": k,
            "capacity": capacity,
            "engine": engine,
            "backend": backend,
            "shards": shards,
            "checkpoint_dir": (
                str(
                    Path(checkpoint_dir)
                    / f"{scenario.name}__{dispatcher}"
                )
                if checkpoint_dir is not None
                else None
            ),
        }

    if jobs > 1 and len(cells) > 1:
        frozen = snapshot_rates(rates, workload.types, k)
        payloads = [
            (frozen, workload, scenario, dispatcher, cell_kwargs(scenario, dispatcher))
            for scenario, dispatcher in cells
        ]
        return parallel_map(_cell_worker, payloads, jobs)
    return [
        run_scenario(
            rates,
            workload,
            scenario,
            dispatcher,
            **cell_kwargs(scenario, dispatcher),
        )
        for scenario, dispatcher in cells
    ]


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    n_machines: int = 3,
    n_jobs: int | None = None,
    seed: int = 0,
    jobs: int = 1,
    shards: int = 1,
    checkpoint_dir: str | None = None,
) -> list[ScenarioOutcome]:
    """The sweep on one deterministically sampled workload."""
    workload = sample_workloads(context.workloads, 1, seed=seed)[0]
    return compute_scenario_sweep(
        context.rates_for(config),
        workload,
        n_machines=n_machines,
        n_jobs=n_jobs,
        seed=seed,
        jobs=jobs,
        shards=shards,
        checkpoint_dir=checkpoint_dir,
    )


def render(outcomes: list[ScenarioOutcome]) -> str:
    """Text rendering: one row per cell, deltas against round-robin."""
    if not outcomes:
        return "no scenarios swept"
    baseline: dict[str, ScenarioOutcome] = {}
    for outcome in outcomes:
        baseline.setdefault(outcome.scenario, outcome)

    def delta(value: float, reference: float) -> str:
        if reference == 0.0 or value != value or reference != reference:
            return "n/a"
        return f"{value / reference - 1.0:+.1%}"

    rows = []
    for o in outcomes:
        ref = baseline[o.scenario]
        rows.append((
            o.scenario,
            o.dispatcher,
            f"{o.throughput:.3f}",
            f"{o.mean_turnaround:.3f}",
            f"{o.utilization:.2f}",
            f"{o.fairness:.3f}",
            delta(o.throughput, ref.throughput),
            delta(o.mean_turnaround, ref.mean_turnaround),
        ))
    table = format_table(
        [
            "scenario",
            "dispatcher",
            "TP",
            "turnaround",
            "busy ctx",
            "fairness",
            "dTP",
            "dTurn",
        ],
        rows,
    )

    winners = []
    for name, ref in baseline.items():
        cells = [o for o in outcomes if o.scenario == name]
        best = min(
            cells,
            key=lambda o: (
                o.mean_turnaround
                if o.mean_turnaround == o.mean_turnaround
                else float("inf")
            ),
        )
        winners.append(f"{name}: {best.dispatcher}")
    m = outcomes[0].n_machines
    summary = (
        f"\n\n{len(baseline)} scenarios x "
        f"{len({o.dispatcher for o in outcomes})} dispatchers on a "
        f"{m}-machine cluster (deltas vs {outcomes[0].dispatcher}).\n"
        "lowest turnaround per scenario: " + "; ".join(winners)
    )
    return table + summary


def _registry_run(
    context: ExperimentContext, options: RunOptions
) -> list[ScenarioOutcome]:
    return run(
        context,
        n_jobs=400 if options.quick else None,
        seed=options.seed_for("scenario_sweep"),
        jobs=options.jobs,
        shards=options.shards,
        checkpoint_dir=options.checkpoint_dir,
    )


register(Experiment(
    name="scenario_sweep",
    kind="analysis",
    title="Scenario sweep — nonstationary & trace-driven workloads x "
    "dispatch policies",
    run=_registry_run,
    render=render,
))
