"""Experiment drivers: one module per paper table/figure.

Each module exposes ``compute_*`` functions returning plain dataclasses
(consumed by tests and benchmarks), a ``render`` function producing the
rows/series the paper reports, and registers itself with
:mod:`repro.experiments.registry` so the unified CLI can discover it::

    python -m repro.experiments --list
    python -m repro.experiments all --jobs 4

All experiments run through one shared, persisted
:class:`~repro.microarch.rate_cache.CachedRateSource` (see
``docs/architecture.md``), so the microarch simulator sweep is paid
once and reused across experiments, worker processes, and benchmark
sessions.

| Module        | Paper artifact                                          |
|---------------|---------------------------------------------------------|
| table1        | Table I — benchmark roster                              |
| figure1       | Fig. 1 — IPC / inst-TP / avg-TP variability bars        |
| figure2       | Fig. 2 — optimal-vs-worst vs FCFS-vs-worst scatter      |
| figure3       | Fig. 3 — linear-bottleneck error vs TP variability      |
| table2        | Table II — coschedule fractions by heterogeneity        |
| figure4       | Fig. 4 — M/M/4 turnaround vs arrival rate               |
| figure5       | Fig. 5 — TT / utilization / empty fraction, 4 schedulers|
| figure6       | Fig. 6 — achieved saturation throughput per workload    |
| section7      | Sec. VII — fetch/ROB policy study                       |
| ntypes        | Sec. V.B — optimal gain vs number of job types          |
| fairness_cf   | Sec. V.D — fairness counterfactual                      |
| makespan_exp  | Sec. II — small-set makespan (LJF vs symbiosis-aware)   |
| units_exp     | Sec. III-B — raw-instruction unit-of-work check         |
| skew_exp      | Sec. III-D — work-share skew vs symbiotic headroom      |
| summary       | abstract — headline digest, measured vs paper           |
"""
