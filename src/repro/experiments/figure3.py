"""Figure 3: linear-bottleneck error vs throughput variability.

Each point is a workload: X = the least-squares error of the best
linear-bottleneck fit (Section V.C.1b), Y = optimal/worst throughput,
colored by the spread in per-type mean WIPC.  The paper finds a good
correlation — workloads close to a linear bottleneck have little
scheduling headroom — with the off-trend points explained by large
per-type performance differences (the equal-work constraint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bottleneck import fit_linear_bottleneck
from repro.core.sensitivity import per_type_rate_spread
from repro.core.variability import workload_variability
from repro.experiments.common import ExperimentContext, format_table
from repro.microarch.rates import RateTable
from repro.util.stats import pearson
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Figure3Point", "Figure3Series", "compute_figure3", "run", "render"]


@dataclass(frozen=True)
class Figure3Point:
    """One workload's position on the Figure-3 scatter."""

    workload_label: str
    bottleneck_error: float
    optimal_vs_worst: float
    rate_spread: float


@dataclass(frozen=True)
class Figure3Series:
    """The scatter plus its correlation for one configuration."""

    config: str
    points: tuple[Figure3Point, ...]
    correlation: float


def compute_figure3(
    rates: RateTable, workloads, *, config: str
) -> Figure3Series:
    """Build the Figure-3 scatter for one machine."""
    points = []
    for workload in workloads:
        fit = fit_linear_bottleneck(rates, workload)
        report = workload_variability(rates, workload)
        points.append(
            Figure3Point(
                workload_label=workload.label(),
                bottleneck_error=fit.error,
                optimal_vs_worst=report.optimal_vs_worst,
                rate_spread=per_type_rate_spread(rates, workload),
            )
        )
    correlation = pearson(
        [p.bottleneck_error for p in points],
        [p.optimal_vs_worst for p in points],
    )
    return Figure3Series(
        config=config, points=tuple(points), correlation=correlation
    )


def run(context: ExperimentContext) -> list[Figure3Series]:
    """Compute Figure 3 for both machine configurations."""
    return [
        compute_figure3(context.smt_rates, context.workloads, config="smt"),
        compute_figure3(context.quad_rates, context.workloads, config="quad"),
    ]


def render(series_list: list[Figure3Series]) -> str:
    """Summary with correlations and sample points."""
    summary = format_table(
        ["config", "corr(error, TP variability)", "points"],
        [
            (s.config, f"{s.correlation:.2f}", str(len(s.points)))
            for s in series_list
        ],
    )
    details = []
    for s in series_list:
        closest = sorted(s.points, key=lambda p: p.bottleneck_error)[:3]
        farthest = sorted(s.points, key=lambda p: -p.bottleneck_error)[:3]
        details.append(f"\n{s.config}: nearest/farthest linear bottleneck")
        details.append(
            format_table(
                ["workload", "lsq error", "optimal/worst", "rate spread"],
                [
                    (p.workload_label, f"{p.bottleneck_error:.4f}",
                     f"{p.optimal_vs_worst:.3f}", f"{p.rate_spread:.2f}")
                    for p in closest + farthest
                ],
            )
        )
    return summary + "\n" + "\n".join(details)


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[Figure3Series]:
    return run(context)


register(Experiment(
    name="figure3",
    kind="figure",
    title="Fig. 3 — linear-bottleneck error vs TP variability",
    run=_registry_run,
    render=render,
))
