"""Experiment registry: the runner's single source of truth.

Every experiment module registers one :class:`Experiment` describing
the paper artifact it reproduces — its name, kind (figure / table /
section / analysis), paper reference, and two callables:

* ``run(context, options)`` — compute the artifact's result object
  from an :class:`~repro.experiments.common.ExperimentContext` and the
  CLI-level :class:`RunOptions`;
* ``render(result)`` — produce the textual rows/series the paper
  reports.

The registry is what makes ``python -m repro.experiments`` work:
:func:`discover` imports every experiment module (each calls
:func:`register` at import time), ``--list`` walks :func:`all_experiments`,
and the parallel runner fans registered names out to worker processes.
Results additionally pass through :func:`to_jsonable` so every artifact
can be emitted as structured JSON for the benchmark suite.
"""

from __future__ import annotations

import dataclasses
import importlib
import zlib
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

__all__ = [
    "Experiment",
    "RunOptions",
    "register",
    "get",
    "names",
    "all_experiments",
    "discover",
    "to_jsonable",
]

#: Modules imported by :func:`discover`; importing each one registers
#: its experiment(s).  Order here fixes ``--list`` / ``all`` order.
EXPERIMENT_MODULES: tuple[str, ...] = (
    "repro.experiments.table1",
    "repro.experiments.figure1",
    "repro.experiments.figure2",
    "repro.experiments.figure3",
    "repro.experiments.table2",
    "repro.experiments.figure4",
    "repro.experiments.figure5",
    "repro.experiments.figure6",
    "repro.experiments.section7",
    "repro.experiments.ntypes",
    "repro.experiments.fairness_cf",
    "repro.experiments.makespan_exp",
    "repro.experiments.units_exp",
    "repro.experiments.skew_exp",
    "repro.experiments.cluster_exp",
    "repro.experiments.scenario_sweep",
    "repro.experiments.fault_sweep",
    "repro.experiments.policy_tournament",
    "repro.experiments.summary",
)

_KINDS = ("figure", "table", "section", "analysis")


@dataclass(frozen=True)
class RunOptions:
    """CLI-level knobs shared by every experiment.

    Attributes:
        max_workloads: optional cap on sampled workloads (None = each
            experiment's own default).
        seed: base sampling seed; per-experiment seeds derive from it
            via :meth:`seed_for` so parallel workers stay deterministic
            regardless of scheduling order.
        quick: smoke-test mode (small subsamples everywhere).
        jobs: worker processes for *within*-experiment fan-out (the
            runner only sets this above 1 when a single experiment is
            named — otherwise ``--jobs`` parallelizes across
            experiments and each one runs its cells serially).
        shards: time-slice shards per simulated run (scale-out
            experiments pass this to
            :func:`repro.queueing.sharding.run_sharded`; results are
            bit-identical for every value).
        checkpoint_dir: directory for crash-safe per-run checkpoints
            (``None`` disables checkpointing).
    """

    max_workloads: int | None = None
    seed: int = 0
    quick: bool = False
    jobs: int = 1
    shards: int = 1
    checkpoint_dir: str | None = None

    def seed_for(self, name: str) -> int:
        """Deterministic per-experiment seed (stable across runs and
        across ``--jobs`` worker assignment)."""
        return (self.seed * 1_000_003 + zlib.crc32(name.encode())) % 2**31

    def workloads(self, default: int | None) -> int | None:
        """Effective workload cap given an experiment's default."""
        if self.max_workloads is not None:
            if default is not None and self.quick:
                return min(self.max_workloads, default)
            return self.max_workloads
        return default


@dataclass(frozen=True)
class Experiment:
    """One registered paper artifact."""

    name: str
    kind: str
    title: str
    run: Callable[[object, RunOptions], object]
    render: Callable[[object], str]

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )


_REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add an experiment; re-registration with the same name replaces
    it (keeps module reloads idempotent)."""
    _REGISTRY[experiment.name] = experiment
    return experiment


def get(name: str) -> Experiment:
    """Look up one experiment (after :func:`discover`)."""
    discover()
    return _REGISTRY[name]


def names() -> list[str]:
    """Registered experiment names in registration (paper) order."""
    discover()
    return list(_REGISTRY)


def all_experiments() -> list[Experiment]:
    """All registered experiments in registration order."""
    discover()
    return list(_REGISTRY.values())


def discover() -> None:
    """Import every experiment module, populating the registry."""
    for module in EXPERIMENT_MODULES:
        importlib.import_module(module)


def to_jsonable(obj: object) -> object:
    """Recursively convert an experiment result to JSON-safe data.

    Objects exposing a ``to_jsonable()`` method (streaming metrics,
    scenarios) emit their own payload, dataclasses become dicts of
    their fields, mappings/sequences recurse, objects with a
    ``label()`` method (workloads) collapse to that label, and
    anything else falls back to ``str``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    emit = getattr(obj, "to_jsonable", None)
    if callable(emit) and not isinstance(obj, type):
        return to_jsonable(emit())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {
            "|".join(k) if isinstance(k, tuple) else str(k): to_jsonable(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    label = getattr(obj, "label", None)
    if callable(label):
        return label()
    return str(obj)
