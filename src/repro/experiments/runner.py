"""Registry-driven CLI: regenerate any paper artifact, in parallel.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments figure1
    python -m repro.experiments all --jobs 4 --results-dir results/
    python -m repro.experiments figure5 figure6 --max-workloads 8

Experiments come from :mod:`repro.experiments.registry` (one entry per
paper figure/table/section).  All runs share one persisted
coschedule-rate cache (default ``.repro-cache/rates.json``; disable
with ``--no-cache``): the first run pays for the microarch simulator
sweep, every later run — including each ``--jobs`` worker process —
reloads the entries and skips the simulator entirely.  Cache hit/miss
statistics are printed after every artifact, and ``--results-dir``
additionally emits one structured JSON file per artifact for the
benchmark suite.

The full 495-workload run of the analytic artifacts (table1/figure1/
figure2/figure3/table2/ntypes/fairness) takes tens of seconds; the
discrete-event artifacts (figure5/figure6) and the four-machine policy
study (section7) use deterministic workload subsamples by default.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments import common, registry
from repro.experiments.registry import RunOptions

__all__ = [
    "DEFAULT_CACHE_PATH",
    "ExperimentOutcome",
    "build_context",
    "run_experiment",
    "main",
]

DEFAULT_CACHE_PATH = Path(".repro-cache") / "rates.json"


@dataclass
class ExperimentOutcome:
    """Everything one experiment run produced (picklable, so parallel
    workers can ship it back to the parent process)."""

    name: str
    kind: str
    title: str
    text: str
    rows: object
    seconds: float
    cache_stats: dict[str, object]
    new_entries: dict[str, dict[tuple[str, ...], dict[str, float]]] = field(
        default_factory=dict
    )

    def as_json(self, options: RunOptions) -> dict[str, object]:
        """The structured payload written by ``--results-dir``."""
        return {
            "name": self.name,
            "kind": self.kind,
            "title": self.title,
            "seconds": round(self.seconds, 3),
            "seed": options.seed_for(self.name),
            "max_workloads": options.max_workloads,
            "quick": options.quick,
            "cache_stats": self.cache_stats,
            "rows": self.rows,
        }


def build_context(
    options: RunOptions, cache_path: str | Path | None
) -> common.ExperimentContext:
    """One shared context for a batch of experiments."""
    return common.default_context(
        max_workloads=options.max_workloads,
        seed=options.seed,
        cache_path=cache_path,
    )


def run_experiment(
    name: str, context: common.ExperimentContext, options: RunOptions
) -> ExperimentOutcome:
    """Run one registered experiment and package its outcome.

    ``cache_stats`` hits/misses are the *delta* for this experiment, so
    cumulative stats on a shared context don't blur per-artifact
    numbers; ``preloaded`` stays session-scoped (preloading happens
    once, when the context is built).
    """
    experiment = registry.get(name)
    before = context.cache_stats()
    start = time.perf_counter()
    result = experiment.run(context, options)
    seconds = time.perf_counter() - start
    after = context.cache_stats()
    stats = common.CacheStats(
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        preloaded=after.preloaded,
        label=after.label,
    ).as_dict()
    return ExperimentOutcome(
        name=name,
        kind=experiment.kind,
        title=experiment.title,
        text=experiment.render(result),
        rows=registry.to_jsonable(result),
        seconds=seconds,
        cache_stats=stats,
        new_entries=context.drain_new_entries(),
    )


# ----------------------------------------------------------------------
# Parallel workers: each process builds its own context preloaded from
# the shared cache file, runs the assigned experiments, and ships the
# freshly computed entries back for the parent to merge and persist.
# ----------------------------------------------------------------------
_WORKER_CONTEXT: common.ExperimentContext | None = None
_WORKER_OPTIONS: RunOptions | None = None


def _worker_init(cache_path: str | None, options: RunOptions) -> None:
    global _WORKER_CONTEXT, _WORKER_OPTIONS
    _WORKER_CONTEXT = build_context(options, cache_path)
    _WORKER_OPTIONS = options


def _worker_run(name: str) -> ExperimentOutcome:
    assert _WORKER_CONTEXT is not None and _WORKER_OPTIONS is not None
    return run_experiment(name, _WORKER_CONTEXT, _WORKER_OPTIONS)


def _run_parallel(
    names: list[str],
    options: RunOptions,
    cache_path: Path | None,
    jobs: int,
) -> list[ExperimentOutcome]:
    mp = multiprocessing.get_context("spawn")
    with mp.Pool(
        processes=min(jobs, len(names)),
        initializer=_worker_init,
        initargs=(str(cache_path) if cache_path else None, options),
    ) as pool:
        return pool.map(_worker_run, names)


def _print_outcome(outcome: ExperimentOutcome) -> None:
    print(f"==== {outcome.name} " + "=" * max(0, 60 - len(outcome.name)))
    print(outcome.text)
    stats = outcome.cache_stats
    print(
        f"rate cache: {stats['hits']} hits, {stats['misses']} misses "
        f"({stats['hit_rate']:.1%} hit rate, {stats['preloaded']} preloaded)"
    )
    print(f"---- {outcome.name} done in {outcome.seconds:.1f}s\n")


def _write_results(
    outcomes: list[ExperimentOutcome],
    options: RunOptions,
    results_dir: Path,
) -> None:
    results_dir.mkdir(parents=True, exist_ok=True)
    for outcome in outcomes:
        path = results_dir / f"{outcome.name}.json"
        with path.open("w") as fp:
            json.dump(outcome.as_json(options), fp, indent=2, sort_keys=True)
    print(f"wrote {len(outcomes)} result file(s) to {results_dir}/")


def _list_experiments() -> None:
    print("available experiments:")
    width = max(len(e.name) for e in registry.all_experiments())
    for experiment in registry.all_experiments():
        print(
            f"  {experiment.name.ljust(width)}  "
            f"[{experiment.kind}] {experiment.title}"
        )
    print("  all")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures from 'Revisiting Symbiotic "
        "Job Scheduling' (ISPASS 2015).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; each shares the persisted rate cache. "
        "With several experiments named, workers split the experiments; "
        "with exactly one, they split its independent cells (e.g. the "
        "scenario_sweep (scenario, dispatcher) grid) — results are "
        "bit-identical either way",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="split each simulated run into N deterministic time-slice "
        "shards (scale-out experiments only; metrics are bit-identical "
        "for every N, shards just bound memory and give --checkpoint-dir "
        "its save points)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write a crash-safe checkpoint after every shard and resume "
        "from one left by a killed run (requires --shards > 1 to "
        "checkpoint mid-run; the run resumes bit-identically)",
    )
    parser.add_argument(
        "--max-workloads",
        type=int,
        default=None,
        help="cap the number of workloads (analytic artifacts use all "
        "495 by default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sampling seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small subsamples everywhere (smoke-test mode)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=DEFAULT_CACHE_PATH,
        metavar="FILE",
        help="persisted rate-cache file (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the persisted rate cache",
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write one structured JSON result file per experiment",
    )
    args = parser.parse_args(argv)

    registry.discover()
    if args.list or not args.experiments:
        _list_experiments()
        return 0

    names = (
        registry.names()
        if args.experiments == ["all"]
        else list(dict.fromkeys(args.experiments))
    )
    unknown = [n for n in names if n not in registry.names()]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2

    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 2

    max_workloads = args.max_workloads
    if args.quick and max_workloads is None:
        max_workloads = 30
    options = RunOptions(
        max_workloads=max_workloads,
        seed=args.seed,
        quick=args.quick,
        # With one experiment the worker pool moves inside it (cell
        # fan-out); with several, the pool splits the experiments and
        # each runs its cells serially.
        jobs=args.jobs if len(names) == 1 else 1,
        shards=args.shards,
        checkpoint_dir=(
            str(args.checkpoint_dir)
            if args.checkpoint_dir is not None
            else None
        ),
    )
    cache_path: Path | None = None if args.no_cache else args.cache

    start = time.perf_counter()
    if args.jobs > 1 and len(names) > 1:
        outcomes = _run_parallel(names, options, cache_path, args.jobs)
        for outcome in outcomes:
            _print_outcome(outcome)
        if cache_path is not None:
            store = common.RateCacheStore(cache_path)
            for outcome in outcomes:
                for section, entries in outcome.new_entries.items():
                    store.merge(section, entries)
            saved = store.save()
            print(f"rate cache: saved {saved} entries to {cache_path}")
    else:
        context = build_context(options, cache_path)
        outcomes = []
        for name in names:
            outcome = run_experiment(name, context, options)
            _print_outcome(outcome)
            outcomes.append(outcome)
        saved = context.save_cache()
        if saved is not None:
            print(f"rate cache: saved {saved} entries to {cache_path}")

    if args.results_dir is not None:
        _write_results(outcomes, options, args.results_dir)
    print(f"total: {len(names)} experiment(s) in {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
