"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner figure1
    python -m repro.experiments.runner all --max-workloads 60

Each artifact prints the same rows/series the paper reports.  The full
495-workload run of the analytic artifacts (table1/figure1/figure2/
figure3/table2/ntypes/fairness) takes tens of seconds; the
discrete-event artifacts (figure5/figure6) and the four-machine policy
study (section7) use deterministic workload subsamples by default.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    common,
    fairness_cf,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    makespan_exp,
    ntypes,
    section7,
    skew_exp,
    summary,
    table1,
    table2,
    units_exp,
)

__all__ = ["main", "ARTIFACTS"]


def _run_table1(context, args) -> str:
    return table1.render(table1.compute_table1(context))


def _run_figure1(context, args) -> str:
    return figure1.render(figure1.run(context))


def _run_figure2(context, args) -> str:
    return figure2.render(figure2.run(context))


def _run_figure3(context, args) -> str:
    return figure3.render(figure3.run(context))


def _run_table2(context, args) -> str:
    return table2.render(table2.run(context))


def _run_figure4(context, args) -> str:
    return figure4.render(figure4.compute_example(), figure4.compute_curves())


def _run_figure5(context, args) -> str:
    cells = figure5.run(
        context,
        max_workloads=min(args.max_workloads or 24, 24)
        if args.quick
        else (args.max_workloads or 24),
        seed=args.seed,
    )
    return figure5.render(cells)


def _run_figure6(context, args) -> str:
    points = figure6.run(
        context, max_workloads=args.max_workloads or 30, seed=args.seed
    )
    return figure6.render(points)


def _run_section7(context, args) -> str:
    summary = section7.run(
        context, max_workloads=args.max_workloads, seed=args.seed
    )
    return section7.render(summary)


def _run_ntypes(context, args) -> str:
    return ntypes.render(ntypes.run(context, seed=args.seed))


def _run_fairness(context, args) -> str:
    outcomes = fairness_cf.run(
        context, max_workloads=args.max_workloads or 60, seed=args.seed
    )
    return fairness_cf.render(outcomes)


def _run_makespan(context, args) -> str:
    cells = makespan_exp.run(
        context, max_workloads=args.max_workloads or 10, seed=args.seed
    )
    return makespan_exp.render(cells)


def _run_units(context, args) -> str:
    comparisons = units_exp.run(
        context, max_workloads=args.max_workloads or 20, seed=args.seed
    )
    return units_exp.render(comparisons)


def _run_summary(context, args) -> str:
    return summary.render(summary.compute_summary(context))


def _run_skew(context, args) -> str:
    points = skew_exp.run(
        context, max_workloads=args.max_workloads or 30, seed=args.seed
    )
    return skew_exp.render(points)


ARTIFACTS: dict[str, Callable] = {
    "table1": _run_table1,
    "figure1": _run_figure1,
    "figure2": _run_figure2,
    "figure3": _run_figure3,
    "table2": _run_table2,
    "figure4": _run_figure4,
    "figure5": _run_figure5,
    "figure6": _run_figure6,
    "section7": _run_section7,
    "ntypes": _run_ntypes,
    "fairness": _run_fairness,
    "makespan": _run_makespan,
    "units": _run_units,
    "skew": _run_skew,
    "summary": _run_summary,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate tables/figures from 'Revisiting Symbiotic "
        "Job Scheduling' (ISPASS 2015).",
    )
    parser.add_argument(
        "artifact",
        nargs="?",
        default=None,
        help="artifact name, or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list artifacts")
    parser.add_argument(
        "--max-workloads",
        type=int,
        default=None,
        help="cap the number of workloads (analytic artifacts use all "
        "495 by default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sampling seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small subsamples everywhere (smoke-test mode)",
    )
    args = parser.parse_args(argv)

    if args.list or args.artifact is None:
        print("available artifacts:")
        for name in ARTIFACTS:
            print(f"  {name}")
        print("  all")
        return 0

    names = list(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {unknown}", file=sys.stderr)
        return 2

    max_workloads = args.max_workloads
    if args.quick and max_workloads is None:
        max_workloads = 30
    context = common.default_context(max_workloads=max_workloads, seed=args.seed)

    for name in names:
        start = time.time()
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(ARTIFACTS[name](context, args))
        print(f"---- {name} done in {time.time() - start:.1f}s\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
