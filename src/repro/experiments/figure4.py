"""Figure 4: turnaround time versus arrival rate (M/M/4 illustration).

The paper's generic curve plus its worked example: an M/M/4 queue at
lambda = 3.5, mu = 1 holds 8.7 jobs on average with turnaround 2.5;
raising mu by 3% (the optimal scheduler's throughput gain) drops these
to 7.3 and 2.1 — a 16% turnaround reduction from a 3% capacity gain.
This is the paper's explanation for why earlier symbiotic-scheduling
studies reported large turnaround improvements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.queueing.mmk import MMKQueue
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Figure4Example", "CurvePoint", "compute_example", "compute_curves", "render"]


@dataclass(frozen=True)
class Figure4Example:
    """The Section-VI M/M/4 worked example."""

    base_jobs_in_system: float
    base_turnaround: float
    improved_jobs_in_system: float
    improved_turnaround: float

    @property
    def turnaround_reduction(self) -> float:
        """Relative turnaround reduction from the 3% service-rate gain."""
        return 1.0 - self.improved_turnaround / self.base_turnaround


@dataclass(frozen=True)
class CurvePoint:
    """One (arrival rate, turnaround) sample on the two curves."""

    arrival_rate: float
    base_turnaround: float
    improved_turnaround: float


def compute_example(
    *,
    arrival_rate: float = 3.5,
    service_rate: float = 1.0,
    improvement: float = 0.03,
    servers: int = 4,
) -> Figure4Example:
    """The paper's worked example (defaults reproduce its numbers)."""
    base = MMKQueue(
        arrival_rate=arrival_rate, service_rate=service_rate, servers=servers
    )
    improved = MMKQueue(
        arrival_rate=arrival_rate,
        service_rate=service_rate * (1.0 + improvement),
        servers=servers,
    )
    return Figure4Example(
        base_jobs_in_system=base.mean_jobs_in_system,
        base_turnaround=base.mean_turnaround,
        improved_jobs_in_system=improved.mean_jobs_in_system,
        improved_turnaround=improved.mean_turnaround,
    )


def compute_curves(
    *,
    service_rate: float = 1.0,
    improvement: float = 0.03,
    servers: int = 4,
    n_points: int = 30,
    max_load: float = 0.99,
) -> list[CurvePoint]:
    """Sample the base and improved turnaround curves of Figure 4."""
    capacity = servers * service_rate
    points = []
    for i in range(1, n_points + 1):
        rate = capacity * max_load * i / n_points
        base = MMKQueue(
            arrival_rate=rate, service_rate=service_rate, servers=servers
        )
        improved = MMKQueue(
            arrival_rate=rate,
            service_rate=service_rate * (1.0 + improvement),
            servers=servers,
        )
        points.append(
            CurvePoint(
                arrival_rate=rate,
                base_turnaround=base.mean_turnaround
                if base.is_stable
                else float("inf"),
                improved_turnaround=improved.mean_turnaround
                if improved.is_stable
                else float("inf"),
            )
        )
    return points


def render(example: Figure4Example, curve: list[CurvePoint]) -> str:
    """Text rendering: the worked example plus curve samples."""
    header = (
        f"M/M/4 example: L={example.base_jobs_in_system:.1f} "
        f"W={example.base_turnaround:.2f}  ->  "
        f"mu*1.03: L={example.improved_jobs_in_system:.1f} "
        f"W={example.improved_turnaround:.2f}  "
        f"({example.turnaround_reduction:.0%} turnaround reduction)"
    )
    table = format_table(
        ["arrival rate", "turnaround (mu)", "turnaround (mu*1.03)"],
        [
            (
                f"{p.arrival_rate:.2f}",
                "inf" if p.base_turnaround == float("inf")
                else f"{p.base_turnaround:.2f}",
                "inf" if p.improved_turnaround == float("inf")
                else f"{p.improved_turnaround:.2f}",
            )
            for p in curve[::3]
        ],
    )
    return header + "\n" + table


def _registry_run(context, options: RunOptions) -> tuple:
    return compute_example(), compute_curves()


def _registry_render(result: tuple) -> str:
    example, curves = result
    return render(example, curves)


register(Experiment(
    name="figure4",
    kind="figure",
    title="Fig. 4 — M/M/4 turnaround vs arrival rate",
    run=_registry_run,
    render=_registry_render,
))
