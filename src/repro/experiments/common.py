"""Shared experiment plumbing: contexts, sampling, table rendering.

An :class:`ExperimentContext` bundles the rate sources for both paper
machines with the workload list.  When built with ``cache_path`` the
rate tables are wrapped in
:class:`~repro.microarch.rate_cache.CachedRateSource` objects backed by
one :class:`~repro.microarch.rate_cache.RateCacheStore` file, so every
experiment, benchmark session, and parallel runner worker shares a
single persisted coschedule-rate sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.workload import Workload, all_workloads
from repro.microarch.benchmarks import BENCHMARK_NAMES
from repro.microarch.config import quad_core_machine, smt_machine
from repro.microarch.rate_cache import (
    CachedRateSource,
    CacheStats,
    RateCacheStore,
)
from repro.microarch.rates import RateSource, RateTable, TableRates
from repro.util.multiset import multisets
from repro.util.rng import make_rng

__all__ = [
    "ExperimentContext",
    "default_context",
    "sample_workloads",
    "snapshot_rates",
    "format_table",
]


@dataclass
class ExperimentContext:
    """Rate sources for both machines plus the workload list.

    Building a context is cheap; coschedules are simulated lazily and
    cached inside each :class:`~repro.microarch.rates.RateTable`, so
    drivers sharing a context share the simulation work — the analogue
    of the paper running its 1,365-combination Sniper sweep once.  With
    a ``cache`` store attached, that sweep additionally persists across
    processes and repository runs.
    """

    smt_rates: RateSource
    quad_rates: RateSource
    workloads: list[Workload] = field(default_factory=list)
    cache: RateCacheStore | None = None

    def rates_for(self, config: str) -> RateSource:
        """The rate source for "smt" or "quad"."""
        if config == "smt":
            return self.smt_rates
        if config == "quad":
            return self.quad_rates
        raise ValueError(f"config must be 'smt' or 'quad', got {config!r}")

    def cache_stats(self) -> CacheStats:
        """Aggregated hit/miss stats over both rate sources (all-zero
        when the context is uncached)."""
        total = CacheStats()
        for rates in (self.smt_rates, self.quad_rates):
            if isinstance(rates, CachedRateSource):
                total = total.merge(rates.stats)
        return total

    def drain_new_entries(
        self,
    ) -> dict[str, dict[tuple[str, ...], dict[str, float]]]:
        """Per-machine entries computed since the last drain (the delta
        a parallel worker ships back for merging).  Draining keeps each
        delta experiment-sized; the full entry set still persists via
        :meth:`save_cache`."""
        delta: dict[str, dict[tuple[str, ...], dict[str, float]]] = {}
        for section, rates in (
            ("smt", self.smt_rates),
            ("quad", self.quad_rates),
        ):
            if isinstance(rates, CachedRateSource):
                fresh = rates.drain_new_entries()
                if fresh:
                    delta[rates.stats.label or section] = fresh
        return delta

    def save_cache(self) -> int | None:
        """Persist the attached cache store; returns entries saved, or
        None when the context is uncached."""
        if self.cache is None:
            return None
        return self.cache.save()


def default_context(
    *,
    n_types: int = 4,
    max_workloads: int | None = None,
    seed: int = 0,
    cache_path: str | Path | None = None,
) -> ExperimentContext:
    """The paper's default setup: 495 four-type workloads, two machines.

    Args:
        n_types: job types per workload (the paper's N, default 4).
        max_workloads: optional deterministic subsample (benchmarks use
            this to bound runtime; None = all workloads).
        seed: sampling seed when subsampling.
        cache_path: optional path to a persisted
            :class:`~repro.microarch.rate_cache.RateCacheStore` file;
            when given, both rate tables are wrapped in cached sources
            preloaded from (and saved back to) that file.
    """
    workloads = all_workloads(BENCHMARK_NAMES, n_types)
    if max_workloads is not None and max_workloads < len(workloads):
        workloads = sample_workloads(workloads, max_workloads, seed=seed)
    smt_rates: RateSource = RateTable(smt_machine())
    quad_rates: RateSource = RateTable(quad_core_machine())
    store: RateCacheStore | None = None
    if cache_path is not None:
        store = RateCacheStore(cache_path)
        smt_rates = store.wrap(smt_rates)
        quad_rates = store.wrap(quad_rates)
    return ExperimentContext(
        smt_rates=smt_rates,
        quad_rates=quad_rates,
        workloads=list(workloads),
        cache=store,
    )


def snapshot_rates(
    rates: RateSource, types: Sequence[str], contexts: int
) -> TableRates:
    """Freeze the rates a run over ``types`` can touch into pure data.

    Every coschedule a cluster run, scheduler offline phase, or
    affinity LP can query is a multiset of the run's types of size
    ``1..contexts``; snapshotting exactly that set yields a small,
    picklable :class:`~repro.microarch.rates.TableRates` that worker
    processes receive by value — no lazy simulator or cache-store
    handles cross the process boundary, and the frozen floats make
    every worker's run bit-identical to an in-process one.
    """
    roster = sorted(set(types))
    coschedules = [
        combo
        for size in range(1, contexts + 1)
        for combo in multisets(roster, size)
    ]
    return TableRates({c: rates.type_rates(c) for c in coschedules})


def sample_workloads(
    workloads: Sequence[Workload], count: int, *, seed: int = 0
) -> list[Workload]:
    """Deterministic subsample preserving diversity (shuffle + take)."""
    rng = make_rng(seed)
    pool = list(workloads)
    rng.shuffle(pool)
    return pool[:count]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table (monospace; for CLI output)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
