"""Shared experiment plumbing: contexts, sampling, table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.workload import Workload, all_workloads
from repro.microarch.benchmarks import BENCHMARK_NAMES
from repro.microarch.config import quad_core_machine, smt_machine
from repro.microarch.rates import RateTable
from repro.util.rng import make_rng

__all__ = [
    "ExperimentContext",
    "default_context",
    "sample_workloads",
    "format_table",
]


@dataclass
class ExperimentContext:
    """Rate tables for both machines plus the workload list.

    Building a context is cheap; coschedules are simulated lazily and
    cached inside each :class:`~repro.microarch.rates.RateTable`, so
    drivers sharing a context share the simulation work — the analogue
    of the paper running its 1,365-combination Sniper sweep once.
    """

    smt_rates: RateTable
    quad_rates: RateTable
    workloads: list[Workload] = field(default_factory=list)

    def rates_for(self, config: str) -> RateTable:
        """The rate table for "smt" or "quad"."""
        if config == "smt":
            return self.smt_rates
        if config == "quad":
            return self.quad_rates
        raise ValueError(f"config must be 'smt' or 'quad', got {config!r}")


def default_context(
    *,
    n_types: int = 4,
    max_workloads: int | None = None,
    seed: int = 0,
) -> ExperimentContext:
    """The paper's default setup: 495 four-type workloads, two machines.

    Args:
        n_types: job types per workload (the paper's N, default 4).
        max_workloads: optional deterministic subsample (benchmarks use
            this to bound runtime; None = all workloads).
        seed: sampling seed when subsampling.
    """
    workloads = all_workloads(BENCHMARK_NAMES, n_types)
    if max_workloads is not None and max_workloads < len(workloads):
        workloads = sample_workloads(workloads, max_workloads, seed=seed)
    return ExperimentContext(
        smt_rates=RateTable(smt_machine()),
        quad_rates=RateTable(quad_core_machine()),
        workloads=list(workloads),
    )


def sample_workloads(
    workloads: Sequence[Workload], count: int, *, seed: int = 0
) -> list[Workload]:
    """Deterministic subsample preserving diversity (shuffle + take)."""
    rng = make_rng(seed)
    pool = list(workloads)
    rng.shuffle(pool)
    return pool[:count]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table (monospace; for CLI output)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
