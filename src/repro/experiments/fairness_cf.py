"""Section V.D: the fairness counterfactual.

The paper's check of its fairness explanation: make the per-type rates
inside the single fully-heterogeneous coschedule equal (preserving its
instantaneous throughput) and re-run the LP.  The optimal scheduler then
selects the heterogeneous coschedule "for most of the time", raising
average throughput substantially, while FCFS and the worst scheduler
barely move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.fairness import equalize_heterogeneous_rates
from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, format_table, sample_workloads
from repro.microarch.rates import RateTable
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["FairnessOutcome", "compute_fairness_cf", "run", "render"]


@dataclass(frozen=True)
class FairnessOutcome:
    """Before/after the Section-V.D rate equalization for one workload."""

    workload_label: str
    optimal_before: float
    optimal_after: float
    fcfs_before: float
    fcfs_after: float
    worst_before: float
    worst_after: float
    hetero_fraction_before: float
    hetero_fraction_after: float

    @property
    def optimal_change(self) -> float:
        """Relative optimal-throughput change from the transform."""
        return self.optimal_after / self.optimal_before - 1.0

    @property
    def fcfs_change(self) -> float:
        """Relative FCFS-throughput change (should be small)."""
        return self.fcfs_after / self.fcfs_before - 1.0

    @property
    def worst_change(self) -> float:
        """Relative worst-throughput change (should be small)."""
        return self.worst_after / self.worst_before - 1.0


def compute_fairness_cf(
    rates: RateTable, workloads: Sequence[Workload]
) -> list[FairnessOutcome]:
    """Apply the counterfactual to each workload and re-solve."""
    contexts = rates.machine.contexts
    outcomes = []
    for workload in workloads:
        hetero = tuple(workload.types)
        before_best = optimal_throughput(rates, workload)
        before_fcfs = fcfs_throughput(rates, workload)
        before_worst = worst_throughput(rates, workload)

        fair = equalize_heterogeneous_rates(rates, workload)
        after_best = optimal_throughput(fair, workload, contexts=contexts)
        after_fcfs = fcfs_throughput(fair, workload, contexts=contexts)
        after_worst = worst_throughput(fair, workload, contexts=contexts)

        outcomes.append(
            FairnessOutcome(
                workload_label=workload.label(),
                optimal_before=before_best.throughput,
                optimal_after=after_best.throughput,
                fcfs_before=before_fcfs.throughput,
                fcfs_after=after_fcfs.throughput,
                worst_before=before_worst.throughput,
                worst_after=after_worst.throughput,
                hetero_fraction_before=before_best.fraction_of(hetero),
                hetero_fraction_after=after_best.fraction_of(hetero),
            )
        )
    return outcomes


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    max_workloads: int = 60,
    seed: int = 0,
) -> list[FairnessOutcome]:
    """The counterfactual on a deterministic workload subsample."""
    workloads = sample_workloads(context.workloads, max_workloads, seed=seed)
    return compute_fairness_cf(context.rates_for(config), workloads)


def render(outcomes: list[FairnessOutcome]) -> str:
    """Mean effects plus the per-workload detail."""
    n = len(outcomes)
    summary = (
        f"means over {n} workloads: optimal "
        f"+{sum(o.optimal_change for o in outcomes) / n:.1%}, FCFS "
        f"{sum(o.fcfs_change for o in outcomes) / n:+.2%}, worst "
        f"{sum(o.worst_change for o in outcomes) / n:+.2%}; "
        f"hetero-coschedule time "
        f"{sum(o.hetero_fraction_before for o in outcomes) / n:.0%} -> "
        f"{sum(o.hetero_fraction_after for o in outcomes) / n:.0%}"
    )
    table = format_table(
        ["workload", "opt change", "fcfs change", "hetero frac before",
         "hetero frac after"],
        [
            (
                o.workload_label,
                f"+{o.optimal_change:.1%}",
                f"{o.fcfs_change:+.2%}",
                f"{o.hetero_fraction_before:.0%}",
                f"{o.hetero_fraction_after:.0%}",
            )
            for o in outcomes[:12]
        ],
    )
    return summary + "\n" + table


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[FairnessOutcome]:
    return run(
        context,
        max_workloads=options.workloads(60),
        seed=options.seed_for("fairness"),
    )


register(Experiment(
    name="fairness",
    kind="analysis",
    title="Sec. V.D — fairness counterfactual",
    run=_registry_run,
    render=render,
))
