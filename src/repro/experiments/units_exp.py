"""Unit-of-work check (Section III-B).

The paper presents weighted-instruction results but reports checking
that the qualitative conclusions also hold for the raw instruction as
unit of work.  This driver re-runs the optimal/FCFS/worst comparison
under both units for a sample of workloads and prints the gains side
by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.units import compare_units
from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, format_table, sample_workloads
from repro.microarch.rates import RateTable
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["UnitComparison", "compute_units", "run", "render"]


@dataclass(frozen=True)
class UnitComparison:
    """Optimal-over-FCFS gains under both units for one workload."""

    workload_label: str
    weighted_gain: float
    instruction_gain: float


def compute_units(
    rates: RateTable, workloads: Sequence[Workload]
) -> list[UnitComparison]:
    """Per-workload gains under the weighted and raw instruction units."""
    comparisons = []
    for workload in workloads:
        result = compare_units(rates, workload)
        comparisons.append(
            UnitComparison(
                workload_label=workload.label(),
                weighted_gain=result["weighted"]["gain"],
                instruction_gain=result["instruction"]["gain"],
            )
        )
    return comparisons


def run(
    context: ExperimentContext,
    *,
    config: str = "smt",
    max_workloads: int = 20,
    seed: int = 0,
) -> list[UnitComparison]:
    """The unit check on a deterministic workload subsample."""
    workloads = sample_workloads(context.workloads, max_workloads, seed=seed)
    return compute_units(context.rates_for(config), workloads)


def render(comparisons: list[UnitComparison]) -> str:
    """Side-by-side gains plus the qualitative verdict."""
    n = len(comparisons)
    mean_w = sum(c.weighted_gain for c in comparisons) / n
    mean_i = sum(c.instruction_gain for c in comparisons) / n
    table = format_table(
        ["workload", "gain (weighted)", "gain (instruction)"],
        [
            (c.workload_label, f"+{c.weighted_gain:.1%}",
             f"+{c.instruction_gain:.1%}")
            for c in comparisons[:12]
        ],
    )
    return (
        f"mean optimal-over-FCFS gain: weighted +{mean_w:.1%}, "
        f"raw instruction +{mean_i:.1%}\n"
        "(the paper's check: conclusions are unit-independent)\n\n" + table
    )


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[UnitComparison]:
    return run(
        context,
        max_workloads=options.workloads(20),
        seed=options.seed_for("units"),
    )


register(Experiment(
    name="units",
    kind="analysis",
    title="Sec. III-B — raw-instruction unit-of-work check",
    run=_registry_run,
    render=render,
))
