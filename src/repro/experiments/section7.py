"""Section VII: the fetch/ROB policy study.

Compares round-robin vs ICOUNT fetch and static vs dynamic ROB
partitioning on the SMT core under two metrics — FCFS throughput and
optimal-scheduler throughput.  The paper finds ICOUNT + dynamic beats
RR + static by 1.7% (FCFS metric) and 1.5% (optimal metric), that the
policy ranking is metric-stable on average, but that ~10% of individual
workloads flip their preferred policy, and that intelligent scheduling
(+3.3% on RR+static) is worth more than the policy upgrade itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.policy_study import (
    ALL_POLICIES,
    PolicyStudy,
    policy_label,
    run_policy_study,
)
from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, format_table, sample_workloads
from repro.microarch.config import FetchPolicy, RobPolicy
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Section7Summary", "compute_section7", "run", "render"]

_BASELINE = (FetchPolicy.ROUND_ROBIN, RobPolicy.STATIC)
_BEST = (FetchPolicy.ICOUNT, RobPolicy.DYNAMIC)


@dataclass(frozen=True)
class Section7Summary:
    """Headline quantities of the policy study."""

    study: PolicyStudy
    best_over_baseline_fcfs: float
    best_over_baseline_optimal: float
    scheduling_gain_on_baseline: float
    flip_fraction: float


def compute_section7(workloads: Sequence[Workload]) -> Section7Summary:
    """Run the four-policy study and derive the paper's summary numbers."""
    study = run_policy_study(workloads)
    baseline = study.result(*_BASELINE)
    scheduling_gain = (
        sum(
            baseline.optimal_tp[label] / baseline.fcfs_tp[label] - 1.0
            for label in study.workload_labels
        )
        / len(study.workload_labels)
    )
    return Section7Summary(
        study=study,
        best_over_baseline_fcfs=study.mean_gain_over(
            _BASELINE, _BEST, metric="fcfs"
        ),
        best_over_baseline_optimal=study.mean_gain_over(
            _BASELINE, _BEST, metric="optimal"
        ),
        scheduling_gain_on_baseline=scheduling_gain,
        flip_fraction=study.flip_fraction(),
    )


def run(
    context: ExperimentContext,
    *,
    max_workloads: int | None = None,
    seed: int = 0,
) -> Section7Summary:
    """Section VII on the context's workloads (optionally subsampled).

    Note: this builds four fresh rate tables (one per policy pair), so
    it re-simulates the coschedule sweep four times.
    """
    workloads = context.workloads
    if max_workloads is not None and max_workloads < len(workloads):
        workloads = sample_workloads(workloads, max_workloads, seed=seed)
    return compute_section7(workloads)


def render(summary: Section7Summary) -> str:
    """Per-policy means plus the headline comparisons."""
    table = format_table(
        ["policy", "mean FCFS TP", "mean optimal TP", "optimal gain"],
        [
            (
                policy_label(fetch, rob),
                f"{summary.study.result(fetch, rob).mean_fcfs:.3f}",
                f"{summary.study.result(fetch, rob).mean_optimal:.3f}",
                f"+{summary.study.result(fetch, rob).mean_optimal / summary.study.result(fetch, rob).mean_fcfs - 1.0:.1%}",
            )
            for fetch, rob in ALL_POLICIES
        ],
    )
    lines = [
        table,
        "",
        f"icount+dynamic over rr+static (FCFS metric):    "
        f"+{summary.best_over_baseline_fcfs:.1%}",
        f"icount+dynamic over rr+static (optimal metric): "
        f"+{summary.best_over_baseline_optimal:.1%}",
        f"optimal scheduling on rr+static itself:          "
        f"+{summary.scheduling_gain_on_baseline:.1%}",
        f"workloads flipping best policy with the metric:  "
        f"{summary.flip_fraction:.1%}",
    ]
    return "\n".join(lines)


def _registry_run(context: ExperimentContext, options: RunOptions) -> Section7Summary:
    return run(
        context,
        max_workloads=options.workloads(None),
        seed=options.seed_for("section7"),
    )


register(Experiment(
    name="section7",
    kind="section",
    title="Sec. VII — fetch/ROB policy study",
    run=_registry_run,
    render=render,
))
