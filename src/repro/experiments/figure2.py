"""Figure 2: FCFS-vs-worst against optimal-vs-worst, per workload.

Each point is a workload; X = optimal/worst throughput, Y = FCFS/worst
throughput.  The paper observes the points hug a line through (1, 1)
with slope 0.73 (SMT) and 0.56 (quad-core): the symbiosis-unaware FCFS
scheduler already bridges ~76% / ~63% of the worst-to-best gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.variability import workload_variability
from repro.experiments.common import ExperimentContext, format_table
from repro.microarch.rates import RateTable
from repro.util.asciiplot import scatter
from repro.util.stats import slope_through_origin
from repro.experiments.registry import Experiment, RunOptions, register

__all__ = ["Figure2Point", "Figure2Series", "compute_figure2", "run", "render"]


@dataclass(frozen=True)
class Figure2Point:
    """One workload's position on the Figure-2 scatter."""

    workload_label: str
    optimal_vs_worst: float
    fcfs_vs_worst: float
    bridged_fraction: float


@dataclass(frozen=True)
class Figure2Series:
    """The full scatter plus the fitted slope for one configuration."""

    config: str
    points: tuple[Figure2Point, ...]
    slope: float
    mean_bridged_fraction: float


def compute_figure2(
    rates: RateTable, workloads, *, config: str
) -> Figure2Series:
    """Build the Figure-2 scatter for one machine."""
    points = []
    for workload in workloads:
        report = workload_variability(rates, workload)
        points.append(
            Figure2Point(
                workload_label=workload.label(),
                optimal_vs_worst=report.optimal_vs_worst,
                fcfs_vs_worst=report.fcfs_vs_worst,
                bridged_fraction=report.bridged_fraction,
            )
        )
    slope = slope_through_origin(
        [p.optimal_vs_worst for p in points],
        [p.fcfs_vs_worst for p in points],
        origin=(1.0, 1.0),
    )
    mean_bridge = sum(p.bridged_fraction for p in points) / len(points)
    return Figure2Series(
        config=config,
        points=tuple(points),
        slope=slope,
        mean_bridged_fraction=mean_bridge,
    )


def run(context: ExperimentContext) -> list[Figure2Series]:
    """Compute Figure 2 for both machine configurations."""
    return [
        compute_figure2(context.smt_rates, context.workloads, config="smt"),
        compute_figure2(context.quad_rates, context.workloads, config="quad"),
    ]


def render(series_list: list[Figure2Series]) -> str:
    """Summary table plus a few extreme points per configuration."""
    summary = format_table(
        ["config", "slope", "FCFS bridges", "points"],
        [
            (
                s.config,
                f"{s.slope:.2f}",
                f"{s.mean_bridged_fraction:.0%}",
                str(len(s.points)),
            )
            for s in series_list
        ],
    )
    details = []
    for s in series_list:
        details.append(f"\n{s.config}: FCFS-vs-worst against optimal-vs-worst")
        details.append(
            scatter(
                [p.optimal_vs_worst for p in s.points],
                [p.fcfs_vs_worst for p in s.points],
                x_label="optimal vs worst",
                y_label="FCFS vs worst",
            )
        )
        top = sorted(s.points, key=lambda p: -p.optimal_vs_worst)[:5]
        details.append(f"\n{s.config}: largest-headroom workloads")
        details.append(
            format_table(
                ["workload", "optimal/worst", "FCFS/worst"],
                [
                    (p.workload_label, f"{p.optimal_vs_worst:.3f}",
                     f"{p.fcfs_vs_worst:.3f}")
                    for p in top
                ],
            )
        )
    return summary + "\n" + "\n".join(details)


def _registry_run(context: ExperimentContext, options: RunOptions) -> list[Figure2Series]:
    return run(context)


register(Experiment(
    name="figure2",
    kind="figure",
    title="Fig. 2 — optimal-vs-worst vs FCFS-vs-worst scatter",
    run=_registry_run,
    render=render,
))
